//! Lock-free metric primitives: striped counters, gauges, and
//! log2-bucketed latency histograms.
//!
//! Counters and histograms are **striped**: each holds a small fixed
//! array of cache-line-padded shards, and every thread writes one shard
//! (assigned round-robin on first use). A record is exactly one (for
//! histograms, two) relaxed `fetch_add` on a line no other thread is
//! writing in the common case; a scrape sums the shards. Sums commute, so
//! the merged readout equals sequential recording — asserted by the
//! histogram proptest in `tests/histogram_prop.rs`.
//!
//! Under the `telemetry-off` feature every type keeps its API but loses
//! its storage and its method bodies: recording compiles to nothing.

#[cfg(not(feature = "telemetry-off"))]
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Stripes per metric. Enough that the handful of recording threads
/// (campaign pool + executors + reactor) rarely collide; small enough
/// that a scrape's shard sum stays trivial.
pub const STRIPES: usize = 8;

/// Histogram bucket count: bucket 0 holds the value 0, bucket `b >= 1`
/// holds values in `[2^(b-1), 2^b)` — 64 powers cover all of `u64`.
pub const N_BUCKETS: usize = 65;

/// The log2 bucket a value lands in (see [`N_BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of a bucket's value range.
#[inline]
pub fn bucket_lo(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// Exclusive upper bound of a bucket's value range (saturating at the
/// top bucket).
#[inline]
pub fn bucket_hi(bucket: usize) -> u64 {
    if bucket >= 64 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

#[cfg(not(feature = "telemetry-off"))]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

#[cfg(not(feature = "telemetry-off"))]
thread_local! {
    /// This thread's stripe index (`usize::MAX` = unassigned).
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The calling thread's stripe, assigned round-robin on first use.
#[cfg(not(feature = "telemetry-off"))]
#[inline]
fn stripe() -> usize {
    STRIPE.with(|cell| {
        let mut s = cell.get();
        if s == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            s = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
            cell.set(s);
        }
        s
    })
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonic counter. Hot path: one relaxed `fetch_add` on the calling
/// thread's stripe.
pub struct Counter {
    name: &'static str,
    help: &'static str,
    #[cfg(not(feature = "telemetry-off"))]
    stripes: [PaddedU64; STRIPES],
}

impl Counter {
    /// Const constructor (for `static` catalog entries — see the
    /// [`crate::counter!`] macro).
    pub const fn new(name: &'static str, help: &'static str) -> Counter {
        Counter {
            name,
            help,
            #[cfg(not(feature = "telemetry-off"))]
            stripes: [const { PaddedU64(AtomicU64::new(0)) }; STRIPES],
        }
    }

    /// Add `n` (relaxed, this thread's stripe only).
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.stripes[stripe()].0.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = n;
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Scrape-time readout: the sum over all stripes.
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.stripes
                .iter()
                .map(|s| s.0.load(Ordering::Relaxed))
                .sum()
        }
        #[cfg(feature = "telemetry-off")]
        0
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A point-in-time signed value (queue depths, active-campaign counts,
/// high-water marks). Not striped: gauges are set, not accumulated, and
/// their writers are scrape-rate, not hot-path.
pub struct Gauge {
    name: &'static str,
    help: &'static str,
    #[cfg(not(feature = "telemetry-off"))]
    value: AtomicI64,
}

impl Gauge {
    pub const fn new(name: &'static str, help: &'static str) -> Gauge {
        Gauge {
            name,
            help,
            #[cfg(not(feature = "telemetry-off"))]
            value: AtomicI64::new(0),
        }
    }

    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    /// Ratchet the gauge up to `v` if it is higher (high-water marks).
    #[inline]
    pub fn set_max(&self, v: i64) {
        #[cfg(not(feature = "telemetry-off"))]
        self.value.fetch_max(v, Ordering::Relaxed);
        #[cfg(feature = "telemetry-off")]
        let _ = v;
    }

    pub fn get(&self) -> i64 {
        #[cfg(not(feature = "telemetry-off"))]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(feature = "telemetry-off")]
        0
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry-off"))]
#[repr(align(64))]
struct HistShard {
    counts: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples (microseconds by
/// convention). Hot path: two relaxed `fetch_add`s on the calling
/// thread's shard. Readout interpolates p50/p90/p99/p99.9 inside the
/// containing bucket.
pub struct Histogram {
    name: &'static str,
    help: &'static str,
    #[cfg(not(feature = "telemetry-off"))]
    shards: [HistShard; STRIPES],
}

impl Histogram {
    pub const fn new(name: &'static str, help: &'static str) -> Histogram {
        Histogram {
            name,
            help,
            #[cfg(not(feature = "telemetry-off"))]
            shards: [const {
                HistShard {
                    counts: [const { AtomicU64::new(0) }; N_BUCKETS],
                    sum: AtomicU64::new(0),
                }
            }; STRIPES],
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let shard = &self.shards[stripe()];
            shard.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(value, Ordering::Relaxed);
        }
        #[cfg(feature = "telemetry-off")]
        let _ = value;
    }

    /// Record a wall-clock duration in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Merge every shard into one consistent snapshot.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut snap = HistSnapshot {
            counts: [0; N_BUCKETS],
            sum: 0,
            count: 0,
        };
        #[cfg(not(feature = "telemetry-off"))]
        for shard in &self.shards {
            for (bucket, count) in shard.counts.iter().enumerate() {
                snap.counts[bucket] += count.load(Ordering::Relaxed);
            }
            snap.sum += shard.sum.load(Ordering::Relaxed);
        }
        snap.count = snap.counts.iter().sum();
        snap
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn help(&self) -> &'static str {
        self.help
    }
}

/// A merged histogram readout (see [`Histogram::snapshot`]).
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_index`]).
    pub counts: [u64; N_BUCKETS],
    /// Sum of all recorded values.
    pub sum: u64,
    /// Total samples.
    pub count: u64,
}

impl HistSnapshot {
    /// Quantile estimate in `[0, 1]`, linearly interpolated inside the
    /// containing bucket. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cumulative = 0u64;
        for (bucket, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if (next as f64) >= target {
                let lo = bucket_lo(bucket) as f64;
                let hi = bucket_hi(bucket) as f64;
                let within = (target - cumulative as f64) / n as f64;
                return lo + (hi - lo) * within.clamp(0.0, 1.0);
            }
            cumulative = next;
        }
        bucket_hi(N_BUCKETS - 1) as f64
    }
}

// ---------------------------------------------------------------------------
// CounterVec
// ---------------------------------------------------------------------------

/// A counter family with one label dimension (e.g. per-backend task
/// counts). Mutex-backed — label cardinality is small and its writers are
/// coordination-rate (fleet task completions), never per-event.
pub struct CounterVec {
    name: &'static str,
    label: &'static str,
    help: &'static str,
    cells: Mutex<Vec<(String, u64)>>,
}

impl CounterVec {
    pub const fn new(name: &'static str, label: &'static str, help: &'static str) -> CounterVec {
        CounterVec {
            name,
            label,
            help,
            cells: Mutex::new(Vec::new()),
        }
    }

    /// Add `n` to the cell for `label_value` (created on first use).
    pub fn add(&self, label_value: &str, n: u64) {
        #[cfg(not(feature = "telemetry-off"))]
        {
            let mut cells = self.cells.lock().expect("counter vec lock");
            match cells.iter_mut().find(|(l, _)| l == label_value) {
                Some((_, v)) => *v += n,
                None => cells.push((label_value.to_string(), n)),
            }
        }
        #[cfg(feature = "telemetry-off")]
        let _ = (label_value, n);
    }

    /// Every `(label value, count)` cell, in first-use order.
    pub fn cells(&self) -> Vec<(String, u64)> {
        self.cells.lock().expect("counter vec lock").clone()
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn label(&self) -> &'static str {
        self.label
    }

    pub fn help(&self) -> &'static str {
        self.help
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for b in 1..N_BUCKETS {
            assert_eq!(bucket_index(bucket_lo(b)), b, "lower bound of bucket {b}");
        }
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn counter_sums_across_threads() {
        static C: Counter = Counter::new("test_counter_total", "test");
        let before = C.get();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        assert_eq!(C.get() - before, 4000);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn gauge_set_and_ratchet() {
        static G: Gauge = Gauge::new("test_gauge", "test");
        G.set(5);
        assert_eq!(G.get(), 5);
        G.set_max(3);
        assert_eq!(G.get(), 5);
        G.set_max(9);
        assert_eq!(G.get(), 9);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn histogram_quantiles_interpolate() {
        static H: Histogram = Histogram::new("test_hist_us", "test");
        // 100 samples of 1000us: everything lands in one bucket; every
        // quantile must land inside that bucket's range.
        for _ in 0..100 {
            H.record(1000);
        }
        let snap = H.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 100_000);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let v = snap.quantile(q);
            assert!(
                (bucket_lo(bucket_index(1000)) as f64..=bucket_hi(bucket_index(1000)) as f64)
                    .contains(&v),
                "q{q} = {v} outside the 1000us bucket"
            );
        }
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        static H: Histogram = Histogram::new("test_empty_us", "test");
        assert_eq!(H.snapshot().quantile(0.5), 0.0);
    }

    #[cfg(not(feature = "telemetry-off"))]
    #[test]
    fn counter_vec_accumulates_per_label() {
        static V: CounterVec = CounterVec::new("test_vec_total", "backend", "test");
        V.add("a", 2);
        V.add("b", 1);
        V.add("a", 3);
        let cells = V.cells();
        assert_eq!(cells, vec![("a".to_string(), 5), ("b".to_string(), 1)]);
    }
}
