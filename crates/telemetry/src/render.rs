//! Scrape-format rendering: Prometheus text exposition for `/metrics`
//! and JSONL snapshots for `--telemetry-out`.
//!
//! Histograms render as Prometheus *summaries* (quantile-labeled gauges
//! plus `_sum`/`_count`) rather than cumulative `_bucket` series — the
//! log2 buckets are an implementation detail; p50/p90/p99/p99.9 are the
//! readout the catalog promises. Values recorded in microseconds are
//! exposed in seconds, per Prometheus base-unit convention.

use crate::catalog;
use crate::metrics::HistSnapshot;
use crate::trace;
use std::fmt::Write as _;

/// The quantiles every histogram exposes.
pub const QUANTILES: [(f64, &str); 4] =
    [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99"), (0.999, "0.999")];

const US_PER_SEC: f64 = 1e6;

fn prom_f64(v: f64) -> String {
    // Prometheus accepts plain decimal; trim the noise of float display
    // without losing sub-microsecond precision.
    let s = format!("{v:.9}");
    let s = s.trim_end_matches('0');
    let s = s.trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn render_summary(out: &mut String, name: &str, help: &str, snap: &HistSnapshot) {
    let _ = writeln!(out, "# HELP {name}_seconds {help}");
    let _ = writeln!(out, "# TYPE {name}_seconds summary");
    for (q, label) in QUANTILES {
        let _ = writeln!(
            out,
            "{name}_seconds{{quantile=\"{label}\"}} {}",
            prom_f64(snap.quantile(q) / US_PER_SEC)
        );
    }
    let _ = writeln!(
        out,
        "{name}_seconds_sum {}",
        prom_f64(snap.sum as f64 / US_PER_SEC)
    );
    let _ = writeln!(out, "{name}_seconds_count {}", snap.count);
}

/// Render the full catalog in Prometheus text exposition format
/// (`text/plain; version=0.0.4`).
pub fn render_prometheus() -> String {
    let mut out = String::with_capacity(8 * 1024);
    for c in catalog::counters() {
        let _ = writeln!(out, "# HELP {} {}", c.name(), c.help());
        let _ = writeln!(out, "# TYPE {} counter", c.name());
        let _ = writeln!(out, "{} {}", c.name(), c.get());
    }
    for g in catalog::gauges() {
        let _ = writeln!(out, "# HELP {} {}", g.name(), g.help());
        let _ = writeln!(out, "# TYPE {} gauge", g.name());
        let _ = writeln!(out, "{} {}", g.name(), g.get());
    }
    for h in catalog::histograms() {
        render_summary(&mut out, h.name(), h.help(), &h.snapshot());
    }
    for v in catalog::counter_vecs() {
        let _ = writeln!(out, "# HELP {} {}", v.name(), v.help());
        let _ = writeln!(out, "# TYPE {} counter", v.name());
        for (label_value, count) in v.cells() {
            let _ = writeln!(
                out,
                "{}{{{}=\"{}\"}} {}",
                v.name(),
                v.label(),
                escape_label(&label_value),
                count
            );
        }
    }
    out
}

/// Minimal JSON string escaping (the crate is zero-dependency by design
/// and trace details may carry quotes or backslashes).
fn json_quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render the catalog plus the trace ring as JSON Lines — one
/// self-describing object per line, suitable for `--telemetry-out`
/// snapshots and offline diffing:
///
/// ```text
/// {"kind":"counter","name":"joss_sweep_specs_total","value":400}
/// {"kind":"histogram","name":"joss_sweep_spec_duration","count":400,"sum_us":...,"p50_us":...,...}
/// {"kind":"trace","t_us":12,"trace_id":"6e2a...","name":"spec","event":"end","detail":"","dur_us":731}
/// ```
pub fn snapshot_jsonl() -> String {
    let mut out = String::with_capacity(16 * 1024);
    for c in catalog::counters() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"counter\",\"name\":{},\"value\":{}}}",
            json_quote(c.name()),
            c.get()
        );
    }
    for g in catalog::gauges() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"gauge\",\"name\":{},\"value\":{}}}",
            json_quote(g.name()),
            g.get()
        );
    }
    for h in catalog::histograms() {
        let snap = h.snapshot();
        let _ = write!(
            out,
            "{{\"kind\":\"histogram\",\"name\":{},\"count\":{},\"sum_us\":{}",
            json_quote(h.name()),
            snap.count,
            snap.sum
        );
        for (q, label) in QUANTILES {
            let _ = write!(
                out,
                ",\"p{}_us\":{}",
                label.trim_start_matches("0."),
                prom_f64(snap.quantile(q))
            );
        }
        out.push_str("}\n");
    }
    for v in catalog::counter_vecs() {
        for (label_value, count) in v.cells() {
            let _ = writeln!(
                out,
                "{{\"kind\":\"counter\",\"name\":{},\"label\":{},\"label_value\":{},\"value\":{}}}",
                json_quote(v.name()),
                json_quote(v.label()),
                json_quote(&label_value),
                count
            );
        }
    }
    for ev in trace::snapshot() {
        let _ = writeln!(
            out,
            "{{\"kind\":\"trace\",\"t_us\":{},\"trace_id\":{},\"name\":{},\"event\":{},\"detail\":{},\"dur_us\":{}}}",
            ev.t_us,
            json_quote(&trace::format_id(ev.trace_id)),
            json_quote(ev.name),
            json_quote(ev.kind.as_str()),
            json_quote(&ev.detail),
            ev.dur_us
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_renders_full_catalog() {
        let text = render_prometheus();
        // The acceptance bar: >= 20 distinct series across layers.
        let series = text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .count();
        assert!(series >= 20, "only {series} series rendered:\n{text}");
        for needle in [
            "joss_serve_requests_total",
            "joss_engine_events_total",
            "joss_fleet_steals_committed_total",
            "joss_sweep_spec_duration_seconds{quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "missing {needle}:\n{text}");
        }
        // HELP/TYPE precede each family exactly once.
        assert_eq!(
            text.matches("# TYPE joss_serve_requests_total counter")
                .count(),
            1
        );
    }

    #[test]
    fn jsonl_lines_are_objects() {
        let snap = snapshot_jsonl();
        assert!(!snap.is_empty());
        for line in snap.lines() {
            assert!(
                line.starts_with('{') && line.ends_with('}'),
                "bad line: {line}"
            );
            assert!(line.contains("\"kind\":"), "bad line: {line}");
        }
    }

    #[test]
    fn prom_f64_trims() {
        assert_eq!(prom_f64(0.0), "0");
        assert_eq!(prom_f64(1.5), "1.5");
        assert_eq!(prom_f64(0.000001), "0.000001");
        assert_eq!(prom_f64(3.0), "3");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_quote("x\ny"), "\"x\\ny\"");
    }
}
