//! Concurrency properties of the two bounded rings: the trace ring under
//! concurrent writers at wraparound, and the time-series sampler reading
//! the striped counters mid-burst. Both suites live in one integration
//! binary on purpose — the catalog and the rings are process-global, so
//! keeping every test that touches them in one process makes the
//! delta-based assertions sound.
//!
//! All of it is vacuous under `telemetry-off` (storage compiles out).
#![cfg(not(feature = "telemetry-off"))]

use joss_telemetry::trace::{self, EventKind, RING_CAP};
use joss_telemetry::{catalog, timeseries};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The process-global rings force the tests to run one at a time.
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Index of a catalog counter in sample order, resolved by name.
fn counter_index(name: &str) -> usize {
    catalog::counters()
        .iter()
        .position(|c| c.name() == name)
        .unwrap_or_else(|| panic!("{name} not in catalog"))
}

// ---------------------------------------------------------------------------
// Trace ring: wraparound under concurrent writers
// ---------------------------------------------------------------------------

/// Four writers push 2x the ring's capacity in events between them. The
/// ring must stay exactly bounded, hold only well-formed events, keep its
/// global order by capture time, and preserve each writer's own program
/// order in whatever suffix of its events survived eviction.
#[test]
fn trace_ring_wraparound_under_concurrent_writers() {
    let _guard = lock();
    trace::clear();
    const WRITERS: usize = 4;
    const PER_WRITER: usize = RING_CAP / 2; // 2x capacity in total
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            scope.spawn(move || {
                let id = trace::new_trace_id();
                for seq in 0..PER_WRITER {
                    let _ = trace::set_current(id);
                    trace::event("ring_prop", format!("{w}:{seq}"));
                }
            });
        }
    });
    let events = trace::snapshot();
    assert_eq!(events.len(), RING_CAP, "ring must sit exactly at capacity");
    let mut last_seq = [None::<usize>; WRITERS];
    for ev in &events {
        assert_eq!(ev.name, "ring_prop");
        assert_eq!(ev.kind, EventKind::Instant);
        assert_ne!(ev.trace_id, 0, "writer events must carry their trace");
        let (w, seq) = ev.detail.split_once(':').expect("writer:seq detail");
        let (w, seq): (usize, usize) = (w.parse().unwrap(), seq.parse().unwrap());
        // Each writer pushes its events in program order from one thread,
        // so whatever suffix of them survives eviction stays ordered.
        if let Some(prev) = last_seq[w] {
            assert!(seq > prev, "writer {w} order broken: {seq} after {prev}");
        }
        last_seq[w] = Some(seq);
    }
    // Eviction is oldest-first, so the globally last event pushed — some
    // writer's final event — always survives. (Which writer depends on
    // scheduling; on a single core whole writers may be evicted.)
    assert!(
        last_seq.contains(&Some(PER_WRITER - 1)),
        "no writer's final event survived: {last_seq:?}"
    );
    trace::clear();
}

// ---------------------------------------------------------------------------
// Time-series sampler: consistency while counters are hammered
// ---------------------------------------------------------------------------

/// The sampler's ring stays bounded however often it is sampled.
#[test]
fn timeseries_ring_is_bounded() {
    let _guard = lock();
    timeseries::clear();
    for _ in 0..timeseries::RING_CAP + 32 {
        timeseries::sample_now();
    }
    assert_eq!(timeseries::len(), timeseries::RING_CAP);
    timeseries::clear();
}

/// Rates derive from sample deltas: two samples with a known counter
/// movement between them report exactly that delta (and a positive rate
/// when any wall time elapsed).
#[test]
fn rates_report_exact_deltas() {
    let _guard = lock();
    timeseries::clear();
    timeseries::sample_now();
    catalog::FLEET_FAILOVERS.add(7);
    // Ensure a nonzero sample-time span even on a coarse clock.
    std::thread::sleep(Duration::from_millis(2));
    timeseries::sample_now();
    let rate = timeseries::rates(Duration::from_secs(3600))
        .into_iter()
        .find(|r| r.name == "joss_fleet_failovers_total")
        .expect("failovers series in rates");
    assert_eq!(rate.delta, 7, "delta must be exactly what was recorded");
    assert!(rate.per_sec > 0.0);
    let body = timeseries::render_json(Duration::from_secs(3600));
    assert!(body.contains("\"timeseries_schema\":1"));
    assert!(body.contains("\"name\":\"joss_fleet_failovers_total\""));
    timeseries::clear();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot-under-load consistency (the threaded-merge property, in
    /// sampler form): four writer threads split a batch of increments to
    /// one striped counter while a sampler thread snapshots concurrently.
    /// No sample may ever read a torn or decreasing total, and once the
    /// writers join, one final sample accounts for every increment.
    #[test]
    fn sampler_never_tears_counters(
        increments in proptest::collection::vec(1u64..64, 0..200),
    ) {
        let _guard = lock();
        timeseries::clear();
        timeseries::sample_now();
        let idx = counter_index("joss_fleet_sheds_total");
        let before = timeseries::samples().last().expect("baseline sample").counters[idx];
        let expected: u64 = increments.iter().sum();

        let done = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let writers: Vec<_> = increments
                .chunks(increments.len().div_ceil(4).max(1))
                .map(|chunk| {
                    scope.spawn(move || {
                        for &v in chunk {
                            catalog::FLEET_SHEDS.add(v);
                        }
                    })
                })
                .collect();
            let sampler = scope.spawn(|| {
                while !done.load(Ordering::Acquire) {
                    timeseries::sample_now();
                }
            });
            for w in writers {
                w.join().expect("writer thread");
            }
            done.store(true, Ordering::Release);
            sampler.join().expect("sampler thread");
        });
        timeseries::sample_now();

        let samples = timeseries::samples();
        let mut prev = 0u64;
        for s in &samples {
            let v = s.counters[idx];
            prop_assert!(v >= prev, "counter went backwards: {v} after {prev}");
            prop_assert!(
                v <= before + expected,
                "torn read: {v} above final total {}",
                before + expected
            );
            prev = v;
        }
        let last = samples.last().expect("final sample");
        prop_assert_eq!(
            last.counters[idx],
            before + expected,
            "post-join sample must account for every increment"
        );
        timeseries::clear();
    }
}
