//! Property tests for the log2 histogram: every recorded value lands in
//! the bucket whose range contains it, and — because shard merging is a
//! commutative sum — recording a sample set across many threads yields
//! exactly the snapshot sequential recording would.
//!
//! The recording properties are vacuous under `telemetry-off` (storage
//! is compiled out), so the whole suite is gated on the default build.
#![cfg(not(feature = "telemetry-off"))]

use joss_telemetry::metrics::{bucket_hi, bucket_index, bucket_lo, Histogram, N_BUCKETS};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bucket placement: `bucket_index(v)` names the unique bucket whose
    /// `[lo, hi)` range contains `v`.
    #[test]
    fn values_land_in_their_bucket(v in proptest::any::<u64>()) {
        let b = bucket_index(v);
        prop_assert!(b < N_BUCKETS);
        prop_assert!(bucket_lo(b) <= v, "{v} below bucket {b} lo {}", bucket_lo(b));
        if b < 64 {
            prop_assert!(v < bucket_hi(b), "{v} at/above bucket {b} hi {}", bucket_hi(b));
        }
        // Neighbors don't claim it.
        if b > 0 {
            prop_assert!(v >= bucket_hi(b - 1));
        }
    }

    /// Quantiles are monotone in q and bounded by the recorded range's
    /// bucket envelope.
    #[test]
    fn quantiles_are_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let h = Histogram::new("prop_monotone_us", "prop");
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.sum, samples.iter().sum::<u64>());
        let qs: Vec<f64> = [0.5, 0.9, 0.99, 0.999].iter().map(|&q| snap.quantile(q)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles not monotone: {:?}", qs);
        }
        let max = *samples.iter().max().unwrap();
        let min = *samples.iter().min().unwrap();
        prop_assert!(qs[0] >= bucket_lo(bucket_index(min)) as f64);
        prop_assert!(qs[3] <= bucket_hi(bucket_index(max)) as f64);
    }

    /// Shard-merge identity: splitting a sample set across 4 recording
    /// threads produces byte-identical bucket counts and sum to recording
    /// the same samples sequentially on one thread.
    #[test]
    fn threaded_merge_equals_sequential(samples in proptest::collection::vec(proptest::any::<u32>(), 0..400)) {
        let samples: Vec<u64> = samples.into_iter().map(u64::from).collect();

        let sequential = Histogram::new("prop_seq_us", "prop");
        for &s in &samples {
            sequential.record(s);
        }

        let threaded = Histogram::new("prop_thr_us", "prop");
        std::thread::scope(|scope| {
            for chunk in samples.chunks(samples.len().div_ceil(4).max(1)) {
                let threaded = &threaded;
                scope.spawn(move || {
                    for &s in chunk {
                        threaded.record(s);
                    }
                });
            }
        });

        let a = sequential.snapshot();
        let b = threaded.snapshot();
        prop_assert_eq!(a.counts, b.counts);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.count, b.count);
    }
}
