//! The perf-regression gate against the *committed* snapshots: the
//! repo-root `BENCH_*.json` artifacts must parse, a run identical to the
//! baseline must pass `--check`, and a doctored baseline (rates inflated
//! far beyond any tolerance) must fail — the property CI's advisory
//! bench-check job relies on.

use joss_bench::check::{self, BenchEntry};
use std::path::PathBuf;

fn committed(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn committed_snapshots_parse_and_self_compare() {
    for (file, schema) in [
        ("BENCH_engine.json", "joss-bench-engine/v2"),
        ("BENCH_serve.json", "joss-bench-serve/v2"),
        ("BENCH_fleet.json", "joss-bench-fleet/v3"),
    ] {
        let (parsed_schema, entries) = check::parse_snapshot(&committed(file))
            .unwrap_or_else(|e| panic!("{file} did not parse: {e}"));
        assert_eq!(parsed_schema, schema, "{file} schema drifted");
        assert!(!entries.is_empty(), "{file} has no benches");
        assert!(
            entries.iter().all(|e| e.rate > 0.0 && e.median_ns > 0.0),
            "{file} has a non-positive rate or median"
        );
        // A fresh run that exactly reproduces the baseline must pass.
        let deltas = check::compare(&entries, &entries, None);
        assert_eq!(deltas.len(), entries.len());
        assert!(
            !check::has_regression(&deltas),
            "{file} fails against itself:\n{}",
            check::render_table(&deltas)
        );
    }
}

#[test]
fn doctored_baseline_fails_the_check() {
    let (_, entries) =
        check::parse_snapshot(&committed("BENCH_engine.json")).expect("committed engine snapshot");
    // Inflate the committed rates 10x: a genuine fresh run (entries) now
    // sits at 0.10x of "baseline", far past every tolerance.
    let doctored: Vec<BenchEntry> = entries
        .iter()
        .map(|e| BenchEntry {
            rate: e.rate * 10.0,
            ..e.clone()
        })
        .collect();
    let deltas = check::compare(&doctored, &entries, None);
    assert!(
        deltas.iter().all(|d| d.regressed),
        "every doctored entry must regress:\n{}",
        check::render_table(&deltas)
    );
    assert!(check::has_regression(&deltas));
    // ...and an override tolerance loose enough (91%) forgives it.
    assert!(!check::has_regression(&check::compare(
        &doctored,
        &entries,
        Some(0.95)
    )));
}
