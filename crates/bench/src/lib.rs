//! # joss-bench — Criterion benchmark harness
//!
//! One bench group per paper artifact plus design ablations:
//!
//! * `paper_experiments` — regenerates Table 1 and Figs. 1/2/5/8/9/10 at
//!   reduced scale and asserts their headline shapes;
//! * `search_overhead` — §7.4: steepest-descent vs exhaustive search;
//! * `ablations` — frequency-coordination heuristics (§5.3) and task
//!   coarsening thresholds;
//! * `engine_throughput` — discrete-event engine event rate;
//! * `native_executor` — the real threaded work-stealing executor.
//!
//! Shared fixtures live here in the library crate.

use joss_experiments::ExperimentContext;
use std::sync::OnceLock;

pub mod check;

/// A shared, lazily built experiment context so every bench reuses one
/// platform characterization (training is the expensive one-time step).
pub fn shared_context() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 3))
}
