//! Machine-readable perf snapshot: the hot-path benchmark numbers as one
//! JSON artifact, so perf changes leave a reviewable trail.
//!
//! ```text
//! joss_bench_json [--out FILE.json] [--runs N] [--search-iters N]
//!                 [--serve-out FILE.json] [--serve-clients N] [--serve-requests M]
//!                 [--fleet-out FILE.json] [--check] [--check-tolerance F]
//! ```
//!
//! Measures the two benchmarks the engine optimizations are judged by —
//! `engine_throughput` (simulated tasks per second of host time under the
//! GRWS baseline) and `search_overhead` (configuration-search evaluations
//! per second) — and writes a `BENCH_engine.json` snapshot (schema
//! documented in `docs/PERF.md`). With `--serve-out` it additionally boots
//! an in-process `joss-serve` daemon on an ephemeral port and snapshots
//! the serving layer — cache-miss campaign latency, cache-hit latency
//! under pipelined/keep-alive/close connection disciplines, and
//! closed-loop throughput under concurrent clients — as
//! `BENCH_serve.json` (`joss-bench-serve/v2`, also in `docs/PERF.md`).
//! With `--fleet-out` it boots 1-vs-2 local backend
//! fleets and snapshots sharded campaign latency as `BENCH_fleet.json`
//! (`joss-bench-fleet/v3`) — including a *straggler* pair, one backend
//! behind a ~4x throttling proxy, measured with the elastic
//! work-stealing coordinator and again with the static plan — asserting
//! the merges are byte-identical while it measures. The committed copies at the repo root are the perf
//! trajectory: every PR that touches the hot path re-runs this tool and
//! commits the diff, so regressions show up in review. Timings are
//! host-dependent; compare only numbers recorded on the same machine.
//!
//! With `--check` the tool becomes a perf-regression *gate*: the `--out`/
//! `--serve-out`/`--fleet-out` paths are read as committed baselines
//! instead of overwritten, the fresh run is compared entry-by-entry with
//! per-family tolerances (see `joss_bench::check`), a delta table is
//! printed, and the process exits non-zero if any bench regressed.
//! `--check-tolerance F` (a fraction, e.g. `0.5`) overrides every
//! per-family default — the knob CI's advisory job loosens on shared
//! runners.

use joss_bench::shared_context;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::GrwsSched;
use joss_dag::{generators, KernelSpec};
use joss_models::{
    exhaustive_search, steepest_descent_search, EnergyEstimator, Objective, SearchOutcome,
};
use joss_platform::{ExecContext, TaskShape};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Entry {
    name: &'static str,
    unit: &'static str,
    /// Primary rate metric (tasks/s or evals/s), median across runs.
    rate: f64,
    /// Wall-time spread of one run/iteration across runs, nanoseconds.
    /// The median is the headline; min (the quietest run — closest to the
    /// code's true cost on a noisy host) and max (the worst outlier) bound
    /// how much to trust it.
    stats: Stats,
}

/// Min / median / max of a sample set, nanoseconds.
#[derive(Clone, Copy)]
struct Stats {
    min_ns: f64,
    median_ns: f64,
    max_ns: f64,
}

fn stats(mut v: Vec<f64>) -> Stats {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Stats {
        min_ns: v[0],
        median_ns: v[v.len() / 2],
        max_ns: v[v.len() - 1],
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = String::from("BENCH_engine.json");
    let mut runs = 5usize;
    let mut search_iters = 20_000usize;
    let mut serve_out: Option<String> = None;
    let mut serve_clients = 8usize;
    let mut serve_requests = 4usize;
    let mut fleet_out: Option<String> = None;
    let mut check = false;
    let mut check_tolerance: Option<f64> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).expect("--runs N");
            }
            "--search-iters" => {
                i += 1;
                search_iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--search-iters N");
            }
            "--serve-out" => {
                i += 1;
                serve_out = Some(args.get(i).expect("--serve-out needs a path").clone());
            }
            "--serve-clients" => {
                i += 1;
                serve_clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--serve-clients N");
            }
            "--serve-requests" => {
                i += 1;
                serve_requests = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--serve-requests M");
            }
            "--fleet-out" => {
                i += 1;
                fleet_out = Some(args.get(i).expect("--fleet-out needs a path").clone());
            }
            "--check" => check = true,
            "--check-tolerance" => {
                i += 1;
                let f: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--check-tolerance F");
                assert!(
                    (0.0..1.0).contains(&f),
                    "--check-tolerance is a fraction in [0, 1)"
                );
                check_tolerance = Some(f);
            }
            other => {
                eprintln!(
                    "usage: joss_bench_json [--out FILE.json] [--runs N] [--search-iters N]\n\
                     \u{20}                      [--serve-out FILE.json] [--serve-clients N] \
                     [--serve-requests M]\n\
                     \u{20}                      [--fleet-out FILE.json] [--check] \
                     [--check-tolerance F]"
                );
                panic!("unknown argument {other:?}");
            }
        }
        i += 1;
    }
    assert!(runs >= 1 && search_iters >= 1 && serve_clients >= 1 && serve_requests >= 1);
    let mode = if check {
        Mode::Check {
            tolerance: check_tolerance,
        }
    } else {
        Mode::Write
    };

    eprintln!("[joss_bench_json] building shared context...");
    let ctx = shared_context();
    let mut entries: Vec<Entry> = Vec::new();

    // Engine throughput: same graphs as the `engine_throughput` criterion
    // bench, median of `runs` full simulations each.
    for (name, n) in [
        ("engine_throughput/grws_1000_tasks", 1_000usize),
        ("engine_throughput/grws_10000_tasks", 10_000usize),
    ] {
        let graph = generators::chain_bundle(
            "bag",
            KernelSpec::new("k", TaskShape::new(0.005, 0.002)),
            n,
            16,
        );
        // One unrecorded warm-up run first (criterion does the same): the
        // first simulation pays one-time costs — lazy thread-local init,
        // cold caches — that no steady-state run repeats.
        let mut samples = Vec::with_capacity(runs);
        for it in 0..=runs {
            let mut sched = GrwsSched::new();
            let t0 = Instant::now();
            let report = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
            let ns = t0.elapsed().as_nanos() as f64;
            assert_eq!(report.tasks, n);
            black_box(report);
            if it > 0 {
                samples.push(ns);
            }
        }
        let st = stats(samples);
        entries.push(Entry {
            name,
            unit: "tasks_per_sec",
            rate: n as f64 / (st.median_ns / 1e9),
            stats: st,
        });
        eprintln!(
            "[joss_bench_json] {name}: {:.3} ms/run (min {:.3})",
            st.median_ns / 1e6,
            st.min_ns / 1e6
        );
    }

    // Search overhead: same estimator fixture as the `search_overhead`
    // criterion bench; the rate is objective *evaluations* per second.
    let shape = TaskShape::new(0.02, 0.02);
    let ectx = ExecContext::alone();
    let samples: Vec<Option<(f64, f64)>> = ctx
        .models
        .indexer()
        .iter()
        .map(|(tc, nc)| {
            let w = ctx.space.nc_count(tc, nc);
            Some((
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_ref_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_alt_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
            ))
        })
        .collect();
    let tables = ctx.models.build_kernel_tables(&samples);
    let est = EnergyEstimator {
        space: &ctx.space,
        tables: &tables,
        idle: &ctx.models.idle,
        objective: Objective::TotalEnergy,
        concurrency: 2.0,
        max_width: usize::MAX,
    };
    let mut search_bench = |name: &'static str, f: &dyn Fn() -> SearchOutcome| {
        let evals_per_search = f().stats.evaluations as f64;
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t0 = Instant::now();
            for _ in 0..search_iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / search_iters as f64);
        }
        let st = stats(samples);
        entries.push(Entry {
            name,
            unit: "evals_per_sec",
            rate: evals_per_search / (st.median_ns / 1e9),
            stats: st,
        });
        eprintln!(
            "[joss_bench_json] {name}: {:.0} ns/search ({evals_per_search} evals)",
            st.median_ns
        );
    };
    search_bench("search_overhead/exhaustive", &|| {
        exhaustive_search(&est, true)
    });
    search_bench("search_overhead/steepest_descent", &|| {
        steepest_descent_search(&est, true)
    });

    let mut all_ok = emit_snapshot(
        &mode,
        &out_path,
        "joss-bench-engine/v2",
        &[],
        runs,
        &entries,
    );

    if let Some(serve_path) = serve_out {
        all_ok &= serve_benches(&mode, &serve_path, runs, serve_clients, serve_requests);
    }
    if let Some(fleet_path) = fleet_out {
        all_ok &= fleet_benches(&mode, &fleet_path, runs);
    }
    if check {
        if !all_ok {
            eprintln!("[joss_bench_json] PERF CHECK FAILED — see the delta tables above");
            std::process::exit(1);
        }
        eprintln!("[joss_bench_json] perf check passed");
    }
}

/// Whether snapshots are written (the default) or treated as committed
/// baselines to gate against (`--check`).
enum Mode {
    Write,
    Check { tolerance: Option<f64> },
}

/// Write the snapshot, or in check mode compare the fresh `entries`
/// against the committed snapshot at `out_path` without touching it.
/// Returns `false` only when a check found a regression (or could not
/// read a comparable baseline, which must fail the gate too — a missing
/// baseline checked against nothing would pass vacuously).
fn emit_snapshot(
    mode: &Mode,
    out_path: &str,
    schema: &str,
    extras: &[(&str, String)],
    runs: usize,
    entries: &[Entry],
) -> bool {
    match mode {
        Mode::Write => {
            write_snapshot(out_path, schema, extras, runs, entries);
            true
        }
        Mode::Check { tolerance } => check_snapshot(out_path, schema, *tolerance, entries),
    }
}

fn check_snapshot(
    baseline_path: &str,
    schema: &str,
    tolerance: Option<f64>,
    entries: &[Entry],
) -> bool {
    use joss_bench::check;
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[joss_bench_json] cannot read baseline {baseline_path}: {e}");
            return false;
        }
    };
    let (base_schema, baseline) = match check::parse_snapshot(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("[joss_bench_json] bad baseline {baseline_path}: {e}");
            return false;
        }
    };
    if base_schema != schema {
        eprintln!(
            "[joss_bench_json] baseline {baseline_path} speaks {base_schema:?} but this \
             build writes {schema:?} — regenerate the snapshot before gating on it"
        );
        return false;
    }
    let fresh: Vec<check::BenchEntry> = entries
        .iter()
        .map(|e| check::BenchEntry {
            name: e.name.to_string(),
            unit: e.unit.to_string(),
            rate: e.rate,
            median_ns: e.stats.median_ns,
        })
        .collect();
    let deltas = check::compare(&baseline, &fresh, tolerance);
    println!("[joss_bench_json] check against {baseline_path}:");
    print!("{}", check::render_table(&deltas));
    !check::has_regression(&deltas)
}

/// Hand-rolled JSON (the vendored serde is a no-op): stable key order, one
/// bench object per line for reviewable diffs. `extras` are pre-rendered
/// JSON values appended after the common fields.
fn write_snapshot(
    out_path: &str,
    schema: &str,
    extras: &[(&str, String)],
    runs: usize,
    entries: &[Entry],
) {
    let mut json = String::new();
    let _ = writeln!(json, "{{\n  \"schema\": \"{schema}\",");
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"runs_per_bench\": {runs},");
    for (key, value) in extras {
        let _ = writeln!(json, "  \"{key}\": {value},");
    }
    json.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"rate\": {:.0}, \
             \"min_ns\": {:.0}, \"median_ns\": {:.0}, \"max_ns\": {:.0}}}",
            e.name, e.unit, e.rate, e.stats.min_ns, e.stats.median_ns, e.stats.max_ns
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(out_path, &json).expect("write bench artifact");
    eprintln!("[joss_bench_json] wrote {out_path}");
    print!("{json}");
}

/// The serving-layer snapshot: boot an in-process daemon (ephemeral port,
/// eager training so characterization never pollutes a sample) and measure
/// the numbers the serve design is judged by — cold (cache-miss) campaign
/// latency, the zero-copy cache-hit path under three connection
/// disciplines (pipelined keep-alive steady state, serial keep-alive,
/// legacy close-per-request), and closed-loop throughput under concurrent
/// verified clients reusing their connections.
fn serve_benches(
    mode: &Mode,
    out_path: &str,
    runs: usize,
    clients: usize,
    requests: usize,
) -> bool {
    use joss_serve::{client, loadgen, LoadgenConfig, ServeConfig, Server};
    use joss_sweep::{GridDesc, SchedulerKind};
    use joss_workloads::Scale;
    use std::time::Duration;

    let desc = GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let timeout = Duration::from_secs(120);

    eprintln!("[joss_bench_json] booting in-process joss-serve (reps=1, eager training)...");
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: clients + 4,
        max_inflight: clients.max(2),
        reps: 1,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral serve port");
    server.train();
    let handle = server.spawn().expect("spawn serve daemon");
    let addr = handle.addr().to_string();
    let mut entries: Vec<Entry> = Vec::new();
    let lat_samples = (runs * 2).max(6);

    // Cache-miss latency: a unique seed per request defeats the cache, so
    // every sample pays a full (tiny-grid) simulation.
    let mut samples = Vec::with_capacity(lat_samples);
    for it in 0..lat_samples {
        let mut miss = desc.clone();
        miss.seeds = vec![0xbe9c_0000 + it as u64];
        let t0 = Instant::now();
        let resp = client::run_campaign(&addr, &miss, timeout).expect("miss request");
        let ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("x-joss-cache"), Some("miss"));
        client::verify_body(&miss, &resp.body).expect("verified records");
        samples.push(ns);
    }
    let st = stats(samples);
    entries.push(Entry {
        name: "serve/campaign_miss",
        unit: "req_per_sec",
        rate: 1e9 / st.median_ns,
        stats: st,
    });
    eprintln!(
        "[joss_bench_json] serve/campaign_miss: {:.3} ms/req",
        st.median_ns / 1e6
    );

    // Cache-hit latency: prime once, then measure the zero-copy replay
    // path under three framings of the same request.
    let prime = client::run_campaign(&addr, &desc, timeout).expect("prime request");
    assert_eq!(prime.status, 200);

    // `campaign_hit` — steady state: one kept-alive connection carrying
    // pipelined requests (depth 32). Each request resolves through the
    // raw-body memo (no JSON parsing) to the shared cached body and is
    // answered with a single vectored write; the pipelined batch
    // amortizes syscalls and scheduler switches the way a saturating
    // caller would. This is the number the nonblocking rewrite is judged
    // by (`docs/PERF.md` has the before/after).
    {
        use std::io::{BufReader, Write as _};
        let canonical = desc.to_canonical_json();
        let one = format!(
            "POST /v1/campaign HTTP/1.1\r\nHost: {addr}\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
            canonical.len(),
            canonical
        );
        let depth = 32usize;
        let batch = one.repeat(depth).into_bytes();
        let stream = std::net::TcpStream::connect(&addr).expect("hit conn");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .set_read_timeout(Some(timeout))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clone stream");
        let mut reader = BufReader::new(stream);
        let batches = (runs * 4).max(20);
        let mut samples = Vec::with_capacity(batches);
        for it in 0..=batches {
            let t0 = Instant::now();
            writer.write_all(&batch).expect("pipelined batch");
            for _ in 0..depth {
                let resp = joss_serve::http::read_response(&mut reader).expect("hit response");
                assert_eq!(resp.status, 200);
                assert_eq!(resp.header("x-joss-cache"), Some("hit"));
                assert_eq!(resp.body, prime.body, "cache must replay identical bytes");
                black_box(resp);
            }
            // First batch is warm-up (memo + branch predictors).
            if it > 0 {
                samples.push(t0.elapsed().as_nanos() as f64 / depth as f64);
            }
        }
        let st = stats(samples);
        entries.push(Entry {
            name: "serve/campaign_hit",
            unit: "req_per_sec",
            rate: 1e9 / st.median_ns,
            stats: st,
        });
        eprintln!(
            "[joss_bench_json] serve/campaign_hit: {:.1} us/req (pipelined x{depth})",
            st.median_ns / 1e3
        );
    }

    // `campaign_hit_keepalive` — one connection, serial request/response:
    // dial once, then `hit_per_conn` strict round trips. Amortizes the
    // dial but pays a full client/server turnaround per request.
    {
        let hit_per_conn = 16usize;
        let mut samples = Vec::with_capacity(lat_samples);
        for _ in 0..lat_samples {
            let t0 = Instant::now();
            let mut conn = client::Conn::connect(&addr, timeout).expect("keep-alive conn");
            for _ in 0..hit_per_conn {
                let resp = conn.run_campaign(&desc).expect("hit request");
                assert_eq!(resp.header("x-joss-cache"), Some("hit"));
                assert_eq!(resp.body, prime.body, "cache must replay identical bytes");
                black_box(resp);
            }
            samples.push(t0.elapsed().as_nanos() as f64 / hit_per_conn as f64);
        }
        let st = stats(samples);
        entries.push(Entry {
            name: "serve/campaign_hit_keepalive",
            unit: "req_per_sec",
            rate: 1e9 / st.median_ns,
            stats: st,
        });
        eprintln!(
            "[joss_bench_json] serve/campaign_hit_keepalive: {:.1} us/req ({hit_per_conn}/conn)",
            st.median_ns / 1e3
        );
    }

    // `campaign_hit_close` — the legacy shape: dial, one request with
    // `Connection: close`, read to EOF. Directly comparable to the
    // pre-keep-alive snapshots of this artifact.
    let mut samples = Vec::with_capacity(lat_samples);
    for _ in 0..lat_samples {
        let t0 = Instant::now();
        let resp = client::run_campaign(&addr, &desc, timeout).expect("hit request");
        let ns = t0.elapsed().as_nanos() as f64;
        assert_eq!(resp.header("x-joss-cache"), Some("hit"));
        assert_eq!(resp.body, prime.body, "cache must replay identical bytes");
        samples.push(ns);
    }
    let st = stats(samples);
    entries.push(Entry {
        name: "serve/campaign_hit_close",
        unit: "req_per_sec",
        rate: 1e9 / st.median_ns,
        stats: st,
    });
    eprintln!(
        "[joss_bench_json] serve/campaign_hit_close: {:.3} ms/req",
        st.median_ns / 1e6
    );

    // Closed-loop throughput: N concurrent verified clients hammering the
    // same grid (one miss, then hits) — the "heavy traffic" shape.
    let mut config = LoadgenConfig::new(addr, desc.clone());
    config.clients = clients;
    config.requests_per_client = requests;
    let report = loadgen::run(&config);
    assert_eq!(report.ok, clients * requests, "all requests must succeed");
    assert_eq!(report.malformed, 0, "{:?}", report.first_malformation);
    assert_eq!(report.errors, 0);
    entries.push(Entry {
        name: "serve/closed_loop_throughput",
        unit: "req_per_sec",
        rate: report.throughput_rps(),
        stats: Stats {
            min_ns: report.percentile(0.0).as_nanos() as f64,
            median_ns: report.percentile(50.0).as_nanos() as f64,
            max_ns: report.percentile(100.0).as_nanos() as f64,
        },
    });
    eprintln!(
        "[joss_bench_json] serve/closed_loop_throughput: {:.0} req/s ({} clients)",
        report.throughput_rps(),
        clients
    );
    handle.stop().expect("stop serve daemon");

    emit_snapshot(
        mode,
        out_path,
        "joss-bench-serve/v2",
        &[
            ("serve_clients", clients.to_string()),
            ("serve_requests_per_client", requests.to_string()),
            ("grid_specs", desc.spec_count().to_string()),
            ("train_reps", "1".to_string()),
        ],
        runs,
        &entries,
    )
}

/// The fleet-layer snapshot: the same campaign run through one local
/// backend, through two, and through two with one of them throttled to a
/// straggler — with the elastic work-stealing coordinator and with the
/// static plan — so the scale-out factor, the coordination overhead it
/// pays for, and the rebalancing payoff all leave a reviewable trail.
/// Every sample defeats the backends' results caches *and* spec stores
/// with fresh seeds, so the numbers measure sharded simulation, not
/// replay — and the merges are asserted byte-identical while the clock
/// runs.
fn fleet_benches(mode: &Mode, out_path: &str, runs: usize) -> bool {
    use joss_fleet::{
        run_fleet, spawn_local_backends_with, FleetConfig, FleetSession, ThrottleProxy,
    };
    use joss_serve::ServeConfig;
    use joss_sweep::{GridDesc, SchedulerKind};
    use joss_workloads::Scale;

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    eprintln!("[joss_bench_json] booting 2 local backends (reps=1, eager training)...");
    let template = ServeConfig {
        reps: 1,
        workers: 4,
        max_inflight: 2,
        // Split the host between the two daemons, as --spawn would.
        campaign_threads: host_threads.div_ceil(2),
        ..ServeConfig::default()
    };
    let handles = spawn_local_backends_with(2, &template, true).expect("spawn local backends");
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    // Six cheap workloads x 2 schedulers x 4 seeds = 48 specs: enough
    // work that a 1-core host still has room to pipeline two backends,
    // and that a straggler's range holds a tail worth stealing.
    let base = GridDesc {
        workloads: vec![
            "DP".into(),
            "FB".into(),
            "MM_256_dop4".into(),
            "HT_Small".into(),
            "MC_4096_dop4".into(),
            "ST_512_dop4".into(),
        ],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42, 7, 13, 99],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    // `shards`: the healthy 1-vs-2 pair pins the same 8-range plan on
    // both topologies so the comparison varies only the backend count;
    // the straggler pair uses each coordinator's own default plan (8
    // micro-ranges elastic, 4 static) — that before/after gap is the
    // thing being measured.
    let fleet_config = |backends: Vec<String>, shards: usize, steal: bool| FleetConfig {
        shards,
        steal,
        expect_train_seed: Some(42),
        expect_reps: Some(1),
        ..FleetConfig::new(backends)
    };

    // Cross-topology identity before the clock runs: 1-backend and
    // 2-backend merges of the same grid must be the same bytes. The
    // first (cold) run is timed — it calibrates the straggler throttle
    // below against the host's cold delivery pace.
    let mut one = Vec::new();
    let t0 = Instant::now();
    run_fleet(&fleet_config(addrs[..1].to_vec(), 8, true), &base, &mut one)
        .expect("1-backend campaign");
    let cold_secs = t0.elapsed().as_secs_f64();
    let mut two = Vec::new();
    run_fleet(&fleet_config(addrs.clone(), 8, true), &base, &mut two).expect("2-backend campaign");
    assert_eq!(one, two, "backend count changed the merged bytes");
    let body_bytes = one.len();

    let lat_samples = (runs * 2).max(6);
    let mut entries: Vec<Entry> = Vec::new();
    // The benches come in A/B pairs whose *comparison* is the headline
    // number, so samples interleave A,B,A,B,... — host-wide slowdowns
    // (another tenant, frequency steps) land on both sides of each pair
    // instead of biasing whichever bench ran last.
    //
    // `fresh`: cold samples draw unique seeds per (bench, side, sample)
    // so no backend can serve a range from its spec store — simulation
    // misses are what's being measured. Warm samples re-run the base
    // grid: steady-state re-execution, where the store answers and the
    // clock sees only coordination plus delivery.
    let mut bench_pair = |names: [&'static str; 2],
                          bench_idx: u64,
                          fresh: bool,
                          configs: [&FleetConfig; 2]| {
        if !fresh {
            // Prime every backend's store with ALL ranges of the plan
            // (claim order is nondeterministic, so any backend may be
            // handed any range once the clock runs), then one combined
            // warmup per topology for the coordination path itself.
            for config in configs {
                for addr in &config.backends {
                    let mut warm = Vec::new();
                    let solo = FleetConfig {
                        backends: vec![addr.clone()],
                        ..config.clone()
                    };
                    run_fleet(&solo, &base, &mut warm).expect("fleet store prime");
                    assert_eq!(warm, one, "priming changed the merged bytes");
                }
                let mut warm = Vec::new();
                run_fleet(config, &base, &mut warm).expect("fleet warmup");
                assert_eq!(warm, one, "warmup changed the merged bytes");
            }
        }
        // One resident session per topology: each sample measures a
        // campaign dispatched through an already-connected fleet (the
        // steady-state shape — probe and worker dials amortized), not
        // per-campaign setup.
        let sessions = [
            FleetSession::connect(configs[0]).expect("fleet session"),
            FleetSession::connect(configs[1]).expect("fleet session"),
        ];
        // Two untimed laps per session: a fresh session's first campaigns
        // pay first-exchange costs on the pooled connections.
        for session in &sessions {
            for _ in 0..2 {
                let mut warm = Vec::new();
                session.run(&base, &mut warm).expect("fleet session warmup");
                assert_eq!(warm, one, "session warmup changed the merged bytes");
            }
        }
        let mut samples = [Vec::new(), Vec::new()];
        let mut steals_total = [0usize; 2];
        for it in 0..lat_samples {
            // Alternate which side goes first so slow drift (frequency
            // steps, another tenant ramping) cancels in the pairing
            // rather than always taxing the same side.
            let order = if it % 2 == 0 { [0, 1] } else { [1, 0] };
            for side in order {
                let session = &sessions[side];
                let desc = if fresh {
                    let tag = bench_idx << 21 | (side as u64) << 20 | it as u64;
                    let mut desc = base.clone();
                    desc.seeds = vec![
                        0xf1ee_0000 + tag,
                        0xf1ee_4000 + tag,
                        0xf1ee_8000 + tag,
                        0xf1ee_c000 + tag,
                    ];
                    desc
                } else {
                    base.clone()
                };
                let mut merged = Vec::new();
                let t0 = Instant::now();
                let report = session.run(&desc, &mut merged).expect("fleet campaign");
                let ns = t0.elapsed().as_nanos() as f64;
                assert_eq!(report.records, desc.spec_count());
                assert_eq!(report.failovers, 0);
                if !fresh {
                    assert_eq!(merged, one, "steady-state run changed the merged bytes");
                }
                steals_total[side] += report.steals;
                samples[side].push(ns);
            }
        }
        for (side, name) in names.into_iter().enumerate() {
            let st = stats(std::mem::take(&mut samples[side]));
            entries.push(Entry {
                name,
                unit: "campaigns_per_sec",
                rate: 1e9 / st.median_ns,
                stats: st,
            });
            eprintln!(
                "[joss_bench_json] {name}: {:.3} ms/campaign (steals {} over {lat_samples} samples)",
                st.median_ns / 1e6,
                steals_total[side]
            );
        }
    };

    bench_pair(
        ["fleet/campaign_1_backend", "fleet/campaign_2_backends"],
        1,
        false,
        [
            &fleet_config(addrs[..1].to_vec(), 8, true),
            &fleet_config(addrs.clone(), 8, true),
        ],
    );

    // Straggler pair: backend 1 goes behind a proxy that meters its
    // responses to a twelfth of the cold single-backend delivery rate,
    // so its ranges arrive ~12x slower than it simulates them. The
    // elastic run steals the slow tails; the static run must sit them
    // out.
    let throttle_rate = ((body_bytes as f64 / cold_secs / 12.0) as u64).clamp(2_000, 50_000_000);
    eprintln!(
        "[joss_bench_json] straggler throttle: {throttle_rate} B/s (~12x on a {body_bytes}-byte body)"
    );
    let proxy = ThrottleProxy::spawn(&addrs[1], throttle_rate).expect("throttle proxy");
    let straggler_addrs = vec![addrs[0].clone(), proxy.addr().to_string()];
    // Identity holds through the throttle and any steal schedule.
    let mut throttled = Vec::new();
    run_fleet(
        &fleet_config(straggler_addrs.clone(), 0, true),
        &base,
        &mut throttled,
    )
    .expect("straggler campaign");
    assert_eq!(throttled, one, "the straggler topology changed the bytes");

    bench_pair(
        [
            "fleet/campaign_2_backends_straggler",
            "fleet/campaign_2_backends_straggler_static",
        ],
        3,
        true,
        [
            &fleet_config(straggler_addrs.clone(), 0, true),
            &fleet_config(straggler_addrs.clone(), 0, false),
        ],
    );
    drop(proxy);

    for handle in handles {
        handle.stop().expect("stop local backend");
    }
    emit_snapshot(
        mode,
        out_path,
        "joss-bench-fleet/v3",
        &[
            ("fleet_backends_max", "2".to_string()),
            // Auto plans: MICRO_FACTOR ranges per backend when stealing,
            // two per backend for the static comparator.
            ("fleet_micro_factor", "4".to_string()),
            ("fleet_static_shards_per_backend", "2".to_string()),
            ("grid_specs", base.spec_count().to_string()),
            (
                "straggler_throttle_bytes_per_sec",
                throttle_rate.to_string(),
            ),
            ("train_reps", "1".to_string()),
        ],
        runs,
        &entries,
    )
}
