//! Machine-readable perf snapshot: the hot-path benchmark numbers as one
//! JSON artifact, so perf changes leave a reviewable trail.
//!
//! ```text
//! joss_bench_json [--out FILE.json] [--runs N] [--search-iters N]
//! ```
//!
//! Measures the two benchmarks the engine optimizations are judged by —
//! `engine_throughput` (simulated tasks per second of host time under the
//! GRWS baseline) and `search_overhead` (configuration-search evaluations
//! per second) — and writes a `BENCH_engine.json` snapshot (schema
//! documented in `docs/PERF.md`). The committed copy at the repo root is
//! the perf trajectory: every PR that touches the hot path re-runs this
//! tool and commits the diff, so regressions show up in review. Timings are
//! host-dependent; compare only numbers recorded on the same machine.

use joss_bench::shared_context;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::GrwsSched;
use joss_dag::{generators, KernelSpec};
use joss_models::{
    exhaustive_search, steepest_descent_search, EnergyEstimator, Objective, SearchOutcome,
};
use joss_platform::{ExecContext, TaskShape};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Entry {
    name: &'static str,
    unit: &'static str,
    /// Primary rate metric (tasks/s or evals/s), median across runs.
    rate: f64,
    /// Median wall time of one run/iteration, nanoseconds.
    median_ns: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    v[v.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut out_path = String::from("BENCH_engine.json");
    let mut runs = 5usize;
    let mut search_iters = 20_000usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--runs" => {
                i += 1;
                runs = args.get(i).and_then(|s| s.parse().ok()).expect("--runs N");
            }
            "--search-iters" => {
                i += 1;
                search_iters = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--search-iters N");
            }
            other => {
                eprintln!("usage: joss_bench_json [--out FILE.json] [--runs N] [--search-iters N]");
                panic!("unknown argument {other:?}");
            }
        }
        i += 1;
    }
    assert!(runs >= 1 && search_iters >= 1);

    eprintln!("[joss_bench_json] building shared context...");
    let ctx = shared_context();
    let mut entries: Vec<Entry> = Vec::new();

    // Engine throughput: same graphs as the `engine_throughput` criterion
    // bench, median of `runs` full simulations each.
    for (name, n) in [
        ("engine_throughput/grws_1000_tasks", 1_000usize),
        ("engine_throughput/grws_10000_tasks", 10_000usize),
    ] {
        let graph = generators::chain_bundle(
            "bag",
            KernelSpec::new("k", TaskShape::new(0.005, 0.002)),
            n,
            16,
        );
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let mut sched = GrwsSched::new();
            let t0 = Instant::now();
            let report = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
            let ns = t0.elapsed().as_nanos() as f64;
            assert_eq!(report.tasks, n);
            black_box(report);
            samples.push(ns);
        }
        let med = median(samples);
        entries.push(Entry {
            name,
            unit: "tasks_per_sec",
            rate: n as f64 / (med / 1e9),
            median_ns: med,
        });
        eprintln!("[joss_bench_json] {name}: {:.3} ms/run", med / 1e6);
    }

    // Search overhead: same estimator fixture as the `search_overhead`
    // criterion bench; the rate is objective *evaluations* per second.
    let shape = TaskShape::new(0.02, 0.02);
    let ectx = ExecContext::alone();
    let samples: Vec<Option<(f64, f64)>> = ctx
        .models
        .indexer()
        .iter()
        .map(|(tc, nc)| {
            let w = ctx.space.nc_count(tc, nc);
            Some((
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_ref_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_alt_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
            ))
        })
        .collect();
    let tables = ctx.models.build_kernel_tables(&samples);
    let est = EnergyEstimator {
        space: &ctx.space,
        tables: &tables,
        idle: &ctx.models.idle,
        objective: Objective::TotalEnergy,
        concurrency: 2.0,
        max_width: usize::MAX,
    };
    let mut search_bench = |name: &'static str, f: &dyn Fn() -> SearchOutcome| {
        let evals_per_search = f().stats.evaluations as f64;
        let mut samples = Vec::with_capacity(runs);
        for _ in 0..runs {
            let t0 = Instant::now();
            for _ in 0..search_iters {
                black_box(f());
            }
            samples.push(t0.elapsed().as_nanos() as f64 / search_iters as f64);
        }
        let med = median(samples);
        entries.push(Entry {
            name,
            unit: "evals_per_sec",
            rate: evals_per_search / (med / 1e9),
            median_ns: med,
        });
        eprintln!("[joss_bench_json] {name}: {med:.0} ns/search ({evals_per_search} evals)");
    };
    search_bench("search_overhead/exhaustive", &|| {
        exhaustive_search(&est, true)
    });
    search_bench("search_overhead/steepest_descent", &|| {
        steepest_descent_search(&est, true)
    });

    // Hand-rolled JSON (the vendored serde is a no-op): stable key order,
    // one bench object per line for reviewable diffs.
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"joss-bench-engine/v1\",\n");
    let _ = writeln!(
        json,
        "  \"host_cores\": {},",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let _ = writeln!(json, "  \"runs_per_bench\": {runs},");
    json.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"unit\": \"{}\", \"rate\": {:.0}, \"median_ns\": {:.0}}}",
            e.name, e.unit, e.rate, e.median_ns
        );
        json.push_str(if i + 1 < entries.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write bench artifact");
    eprintln!("[joss_bench_json] wrote {out_path}");
    print!("{json}");
}
