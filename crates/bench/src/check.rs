//! Perf-regression gating: compare a fresh `joss_bench_json` run against
//! the committed `BENCH_*.json` snapshots and fail on regression — the
//! bench trajectory as a guardrail instead of a passive log.
//!
//! The comparison is rate-based (every snapshot entry's `rate` is a
//! higher-is-better throughput) with a per-metric relative tolerance:
//! a fresh rate below `baseline * (1 - tolerance)` is a regression, and a
//! baseline bench missing from the fresh run is one too (deleting a bench
//! must be a deliberate snapshot update, not a silent gap). Tolerances
//! default per family — engine microbenches are steady; serve and fleet
//! numbers ride on sockets, schedulers, and (in CI) noisy shared hosts —
//! and `--check-tolerance` overrides all of them for advisory container
//! runs.

use joss_sweep::json::{self, Value};

/// One bench entry read from a snapshot (the fields `--check` compares).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub unit: String,
    /// Higher-is-better throughput (tasks/s, evals/s, req/s, ...).
    pub rate: f64,
    /// Median wall time per iteration, nanoseconds (shown in the table).
    pub median_ns: f64,
}

/// Parse a `BENCH_*.json` snapshot into `(schema, entries)`.
pub fn parse_snapshot(text: &str) -> Result<(String, Vec<BenchEntry>), String> {
    let parsed = json::parse(text).map_err(|e| format!("unparseable snapshot: {e}"))?;
    let schema = parsed
        .get("schema")
        .and_then(Value::as_str)
        .ok_or("snapshot has no \"schema\" field")?
        .to_string();
    let benches = parsed
        .get("benches")
        .and_then(Value::as_array)
        .ok_or("snapshot has no \"benches\" array")?;
    let mut entries = Vec::with_capacity(benches.len());
    for bench in benches {
        let field = |key: &str| -> Result<&Value, String> {
            bench
                .get(key)
                .ok_or_else(|| format!("bench entry is missing {key:?}"))
        };
        entries.push(BenchEntry {
            name: field("name")?
                .as_str()
                .ok_or("bench \"name\" is not a string")?
                .to_string(),
            unit: field("unit")?
                .as_str()
                .ok_or("bench \"unit\" is not a string")?
                .to_string(),
            rate: field("rate")?
                .as_f64()
                .ok_or("bench \"rate\" is not a number")?,
            median_ns: field("median_ns")?
                .as_f64()
                .ok_or("bench \"median_ns\" is not a number")?,
        });
    }
    Ok((schema, entries))
}

/// The default relative tolerance for a bench, by family. Engine
/// microbenches run in-process and repeat tightly; anything touching
/// sockets or multi-process fleets swings much wider run to run.
pub fn default_tolerance(name: &str) -> f64 {
    if name.starts_with("serve/") || name.starts_with("fleet/") {
        0.60
    } else {
        0.40
    }
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct Delta {
    pub name: String,
    pub unit: String,
    pub baseline_rate: f64,
    /// `None` — the bench exists in the baseline but not the fresh run.
    pub fresh_rate: Option<f64>,
    /// `fresh / baseline` (1.0 = unchanged, above = faster).
    pub ratio: f64,
    pub tolerance: f64,
    pub regressed: bool,
}

/// Compare a fresh run against the baseline snapshot. Every baseline
/// bench produces one [`Delta`]; fresh-only benches are ignored (they
/// gate nothing until committed). `tolerance_override` replaces the
/// per-family defaults when given.
pub fn compare(
    baseline: &[BenchEntry],
    fresh: &[BenchEntry],
    tolerance_override: Option<f64>,
) -> Vec<Delta> {
    baseline
        .iter()
        .map(|base| {
            let tolerance = tolerance_override.unwrap_or_else(|| default_tolerance(&base.name));
            let fresh_entry = fresh.iter().find(|f| f.name == base.name);
            let fresh_rate = fresh_entry.map(|f| f.rate);
            let ratio =
                fresh_rate.map_or(0.0, |r| if base.rate > 0.0 { r / base.rate } else { 1.0 });
            let regressed = match fresh_rate {
                None => true,
                Some(r) => r < base.rate * (1.0 - tolerance),
            };
            Delta {
                name: base.name.clone(),
                unit: base.unit.clone(),
                baseline_rate: base.rate,
                fresh_rate,
                ratio,
                tolerance,
                regressed,
            }
        })
        .collect()
}

/// Any row below its tolerance?
pub fn has_regression(deltas: &[Delta]) -> bool {
    deltas.iter().any(|d| d.regressed)
}

/// The human-readable delta table `--check` prints.
pub fn render_table(deltas: &[Delta]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<44} {:>14} {:>14} {:>7} {:>6}  VERDICT",
        "BENCH", "BASELINE", "FRESH", "RATIO", "TOL"
    );
    for d in deltas {
        let verdict = if d.fresh_rate.is_none() {
            "MISSING"
        } else if d.regressed {
            "REGRESSED"
        } else {
            "ok"
        };
        let _ = writeln!(
            out,
            "{:<44} {:>14.0} {:>14} {:>7} {:>5.0}%  {}",
            d.name,
            d.baseline_rate,
            d.fresh_rate.map_or("-".to_string(), |r| format!("{r:.0}")),
            if d.fresh_rate.is_some() {
                format!("{:.2}x", d.ratio)
            } else {
                "-".to_string()
            },
            d.tolerance * 100.0,
            verdict,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, rate: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            unit: "x_per_sec".into(),
            rate,
            median_ns: 1e9 / rate,
        }
    }

    #[test]
    fn identical_runs_pass() {
        let base = [entry("engine_throughput/a", 1e6), entry("serve/hit", 5e4)];
        let deltas = compare(&base, &base, None);
        assert_eq!(deltas.len(), 2);
        assert!(!has_regression(&deltas));
        assert!(deltas.iter().all(|d| (d.ratio - 1.0).abs() < 1e-9));
    }

    #[test]
    fn a_slump_beyond_tolerance_regresses() {
        let base = [entry("engine_throughput/a", 1e6)];
        let ok = [entry("engine_throughput/a", 0.7e6)]; // -30% < 40% tol
        assert!(!has_regression(&compare(&base, &ok, None)));
        let slump = [entry("engine_throughput/a", 0.5e6)]; // -50% > 40% tol
        let deltas = compare(&base, &slump, None);
        assert!(has_regression(&deltas));
        assert!(render_table(&deltas).contains("REGRESSED"));
    }

    #[test]
    fn tolerances_are_per_family_and_overridable() {
        assert_eq!(default_tolerance("engine_throughput/grws_1000_tasks"), 0.40);
        assert_eq!(default_tolerance("serve/campaign_hit"), 0.60);
        assert_eq!(default_tolerance("fleet/campaign_2_backends"), 0.60);
        let base = [entry("serve/hit", 1e5)];
        let half = [entry("serve/hit", 0.5e5)];
        assert!(!has_regression(&compare(&base, &half, None))); // within 60%
        assert!(has_regression(&compare(&base, &half, Some(0.25))));
    }

    #[test]
    fn missing_benches_regress_and_new_ones_do_not_gate() {
        let base = [entry("a", 1.0), entry("b", 1.0)];
        let fresh = [entry("a", 1.0), entry("c", 1.0)];
        let deltas = compare(&base, &fresh, None);
        assert_eq!(deltas.len(), 2, "only baseline benches gate");
        assert!(deltas.iter().any(|d| d.name == "b" && d.regressed));
        assert!(render_table(&deltas).contains("MISSING"));
    }

    #[test]
    fn snapshot_round_trip() {
        let text = r#"{
  "schema": "joss-bench-engine/v2",
  "host_cores": 4,
  "runs_per_bench": 5,
  "benches": [
    {"name": "a", "unit": "tasks_per_sec", "rate": 100, "min_ns": 1, "median_ns": 2, "max_ns": 3}
  ]
}"#;
        let (schema, entries) = parse_snapshot(text).expect("parse");
        assert_eq!(schema, "joss-bench-engine/v2");
        assert_eq!(entries, vec![entry_with("a", 100.0, 2.0)]);
    }

    fn entry_with(name: &str, rate: f64, median_ns: f64) -> BenchEntry {
        BenchEntry {
            name: name.into(),
            unit: "tasks_per_sec".into(),
            rate,
            median_ns,
        }
    }
}
