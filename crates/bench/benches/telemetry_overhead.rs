//! What telemetry costs: the primitive recording operations in
//! isolation, and the engine's hot loop with the profiling flush
//! enabled vs runtime-disabled. The CI bench-smoke job additionally
//! compiles this crate with `--features telemetry-off` and asserts the
//! grws_10k numbers agree within noise — the compile-out feature must
//! be indistinguishable from the runtime-on path, or the "one relaxed
//! atomic add" claim is broken somewhere.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use joss_bench::shared_context;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::GrwsSched;
use joss_dag::{generators, KernelSpec};
use joss_platform::TaskShape;
use joss_telemetry::{counter, histogram};
use std::hint::black_box;

counter!(static BENCH_COUNTER: "joss_bench_ops", "telemetry_overhead probe counter");
histogram!(
    static BENCH_HIST: "joss_bench_lat",
    "telemetry_overhead probe histogram"
);

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_primitives");
    g.throughput(Throughput::Elements(1));
    g.bench_function("counter_inc", |b| b.iter(|| BENCH_COUNTER.inc()));
    g.bench_function("histogram_record", |b| {
        let mut v = 1u64;
        b.iter(|| {
            BENCH_HIST.record(black_box(v));
            v = v.wrapping_mul(2).max(1) & 0xffff_ffff;
        })
    });
    g.finish();
}

fn bench_engine_toggle(c: &mut Criterion) {
    let ctx = shared_context();
    let n = 10_000usize;
    let graph = generators::chain_bundle(
        "bag",
        KernelSpec::new("k", TaskShape::new(0.005, 0.002)),
        n,
        16,
    );
    let mut g = c.benchmark_group("telemetry_overhead");
    g.throughput(Throughput::Elements(n as u64));
    g.sample_size(10);
    for (label, enabled) in [
        ("grws_10k_telemetry_on", true),
        ("grws_10k_telemetry_off", false),
    ] {
        g.bench_function(label, |b| {
            joss_telemetry::set_enabled(enabled);
            b.iter(|| {
                let mut sched = GrwsSched::new();
                let report =
                    SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
                assert_eq!(report.tasks, n);
                black_box(report)
            });
            joss_telemetry::set_enabled(true);
        });
    }
    g.finish();
}

criterion_group!(telemetry, bench_primitives, bench_engine_toggle);
criterion_main!(telemetry);
