//! One Criterion group per paper table/figure: each bench regenerates the
//! artifact at reduced scale and sanity-asserts its headline shape, so a
//! `cargo bench` run doubles as a reproduction smoke test.

use criterion::{criterion_group, criterion_main, Criterion};
use joss_bench::shared_context;
use joss_experiments::{fig1, fig10, fig2, fig5, fig8, fig9, table1};
use joss_workloads::Scale;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_inventory", |b| {
        b.iter(|| {
            let t = table1::run();
            assert_eq!(t.rows.len(), 10);
            black_box(t)
        })
    });
}

fn bench_fig1(c: &mut Criterion) {
    let ctx = shared_context();
    c.bench_function("fig1_motivation", |b| {
        b.iter(|| {
            let f = fig1::run(ctx, Scale::Divided(400), 42);
            // Including memory energy must never *increase* total energy.
            for bench in &f.benches {
                let e1 = bench.scenarios[0].energy.total_j();
                let e2 = bench.scenarios[1].energy.total_j();
                assert!(e2 <= e1 + 1e-9);
            }
            black_box(f)
        })
    });
}

fn bench_fig2(c: &mut Criterion) {
    let ctx = shared_context();
    c.bench_function("fig2_tradeoffs", |b| {
        b.iter(|| {
            let f = fig2::run(ctx, Scale::Divided(400), 42);
            for bench in &f.benches {
                assert!(bench.points.len() >= 3, "curve must have points");
            }
            black_box(f)
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let ctx = shared_context();
    c.bench_function("fig5_power_profile", |b| {
        b.iter(|| {
            let f = fig5::run(ctx);
            assert_eq!(f.points.len(), 45, "3 MB levels x 15 freq combos");
            black_box(f)
        })
    });
}

fn bench_fig8(c: &mut Criterion) {
    let ctx = shared_context();
    let mut g = c.benchmark_group("fig8_energy");
    g.sample_size(10);
    g.bench_function("suite_x_schedulers", |b| {
        b.iter(|| {
            let f = fig8::run(ctx, Scale::Divided(400), 42, 0.005);
            let geo = f.geo_means();
            // Headline shape: JOSS (col 4) beats the GRWS baseline (col 0).
            assert!(geo[4] < geo[0], "JOSS must beat GRWS: {geo:?}");
            black_box(f)
        })
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let ctx = shared_context();
    let mut g = c.benchmark_group("fig9_constraints");
    g.sample_size(10);
    g.bench_function("speedup_targets", |b| {
        b.iter(|| {
            let f = fig9::run(ctx, Scale::Divided(400), 42);
            black_box(f)
        })
    });
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let ctx = shared_context();
    let mut g = c.benchmark_group("fig10_accuracy");
    g.sample_size(10);
    g.bench_function("model_accuracy", |b| {
        b.iter(|| {
            let f = fig10::run(ctx, Scale::Divided(400));
            let [(_, p), _, _] = f.stats();
            assert!(p.mean > 0.9, "performance model accuracy {p:?}");
            black_box(f)
        })
    });
    g.finish();
}

criterion_group!(
    paper,
    bench_table1,
    bench_fig1,
    bench_fig2,
    bench_fig5,
    bench_fig8,
    bench_fig9,
    bench_fig10
);
criterion_main!(paper);
