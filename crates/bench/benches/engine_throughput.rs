//! Discrete-event engine throughput: how many tasks per second of host time
//! the runtime simulates under the GRWS baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use joss_bench::shared_context;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::GrwsSched;
use joss_dag::{generators, KernelSpec};
use joss_platform::TaskShape;
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let ctx = shared_context();
    let mut g = c.benchmark_group("engine_throughput");
    for n in [1_000usize, 10_000] {
        let graph = generators::chain_bundle(
            "bag",
            KernelSpec::new("k", TaskShape::new(0.005, 0.002)),
            n,
            16,
        );
        g.throughput(Throughput::Elements(n as u64));
        g.sample_size(10);
        g.bench_function(format!("grws_{n}_tasks"), |b| {
            b.iter(|| {
                let mut sched = GrwsSched::new();
                let report =
                    SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
                assert_eq!(report.tasks, n);
                black_box(report)
            })
        });
    }
    g.finish();
}

criterion_group!(engine, bench_engine);
criterion_main!(engine);
