//! Calendar queue vs the `BinaryHeap` it replaced, on an engine-shaped
//! event stream: pop one event, push follow-ups mostly at the current
//! timestamp (the `Wake` pattern), occasionally in the future (the `Done`
//! pattern). Both sides produce identical pop sequences (see the proptest
//! in `joss-core/tests/equeue_order.rs`); this measures the speed gap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use joss_core::CalendarQueue;
use joss_platform::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::hint::black_box;

const EVENTS: usize = 100_000;

/// The surface the driver needs from either queue.
trait EventQueue {
    fn push(&mut self, at: SimTime, id: u32);
    fn pop(&mut self) -> Option<(SimTime, u32)>;
}

impl EventQueue for CalendarQueue<u32> {
    fn push(&mut self, at: SimTime, id: u32) {
        CalendarQueue::push(self, at, id)
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        CalendarQueue::pop(self)
    }
}

/// The engine's previous queue: min-heap with a push counter as FIFO
/// tie-break.
#[derive(Default)]
struct HeapQueue {
    seq: u64,
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
}

impl EventQueue for HeapQueue {
    fn push(&mut self, at: SimTime, id: u32) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, id)));
    }

    fn pop(&mut self) -> Option<(SimTime, u32)> {
        self.heap.pop().map(|Reverse((at, _, id))| (at, id))
    }
}

/// Drive a queue through the engine-shaped stream: start with a backlog,
/// then per pop push follow-ups — 70% at "now", 30% strictly later — until
/// `EVENTS` pops have been served. Returns a checksum of the popped
/// timestamps (identical across implementations by the ordering contract,
/// so the two benches verifiably do the same work).
fn drive(q: &mut impl EventQueue) -> u64 {
    let mut rng = StdRng::seed_from_u64(42);
    for id in 0..64u32 {
        q.push(SimTime(rng.gen_range(0..1_000)), id);
    }
    let mut checksum = 0u64;
    let mut served = 0usize;
    let mut next_id = 64u32;
    while served < EVENTS {
        let Some((now, id)) = q.pop() else { break };
        checksum = checksum.wrapping_mul(31).wrapping_add(now.0 ^ id as u64);
        served += 1;
        // Keep the queue population roughly steady.
        let follow_ups = if rng.gen_range(0..4u64) == 0 { 2 } else { 1 };
        for _ in 0..follow_ups {
            let at = if rng.gen_range(0..10u64) < 7 {
                now
            } else {
                SimTime(now.0 + rng.gen_range(1..5_000u64))
            };
            q.push(at, next_id);
            next_id = next_id.wrapping_add(1);
        }
    }
    checksum
}

fn bench_equeue(c: &mut Criterion) {
    let mut g = c.benchmark_group("equeue_vs_heap");
    g.throughput(Throughput::Elements(EVENTS as u64));
    g.sample_size(20);

    g.bench_function("calendar_queue", |b| {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        b.iter(|| {
            q.reset();
            black_box(drive(&mut q))
        })
    });

    g.bench_function("binary_heap", |b| {
        let mut q = HeapQueue::default();
        b.iter(|| {
            q.heap.clear();
            q.seq = 0;
            black_box(drive(&mut q))
        })
    });

    g.finish();
}

criterion_group!(equeue, bench_equeue);
criterion_main!(equeue);
