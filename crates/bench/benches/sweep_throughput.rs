//! Campaign executor throughput: the same spec grid at 1 worker vs all
//! cores, so `cargo bench` shows the sweep subsystem's parallel speedup
//! (and catches determinism regressions — the records must agree).

use criterion::{criterion_group, criterion_main, Criterion};
use joss_bench::shared_context;
use joss_sweep::{default_threads, to_jsonl, Campaign, SchedulerKind, SpecGrid, Workload};
use joss_workloads::{fig8_suite, Scale};
use std::hint::black_box;

fn grid() -> Vec<joss_sweep::RunSpec> {
    SpecGrid::new()
        .workloads(
            fig8_suite(Scale::Divided(400))
                .into_iter()
                .take(7)
                .map(Workload::from),
        )
        .schedulers([SchedulerKind::Grws, SchedulerKind::Joss])
        .seeds([42])
        .build()
}

fn bench_campaign(c: &mut Criterion) {
    let ctx = shared_context();
    let mut g = c.benchmark_group("sweep_throughput");
    g.sample_size(10);
    let baseline = Campaign::with_threads(1).run(ctx, grid());
    for threads in [1, default_threads()] {
        g.bench_function(format!("grid7x2_t{threads}"), |b| {
            b.iter(|| {
                let records = Campaign::with_threads(threads).run(ctx, grid());
                assert_eq!(
                    to_jsonl(&records),
                    to_jsonl(&baseline),
                    "thread-count invariance violated"
                );
                black_box(records)
            })
        });
    }
    g.finish();
}

criterion_group!(sweep, bench_campaign);
criterion_main!(sweep);
