//! §7.4 ablation: steepest-descent vs exhaustive configuration search, on
//! the TX2-like space and the larger hypothetical platform.

use criterion::{criterion_group, criterion_main, Criterion};
use joss_bench::shared_context;
use joss_models::{exhaustive_search, steepest_descent_search, EnergyEstimator, Objective};
use joss_platform::{ExecContext, TaskShape};
use std::hint::black_box;

fn bench_searches(c: &mut Criterion) {
    let ctx = shared_context();
    let shape = TaskShape::new(0.02, 0.02);
    let ectx = ExecContext::alone();
    let samples: Vec<Option<(f64, f64)>> = ctx
        .models
        .indexer()
        .iter()
        .map(|(tc, nc)| {
            let w = ctx.space.nc_count(tc, nc);
            Some((
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_ref_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
                ctx.machine.clean_time_s(
                    &shape,
                    tc,
                    w,
                    ctx.models.fc_alt_ghz(),
                    ctx.models.fm_ref_ghz(),
                    &ectx,
                ),
            ))
        })
        .collect();
    let tables = ctx.models.build_kernel_tables(&samples);
    let est = EnergyEstimator {
        space: &ctx.space,
        tables: &tables,
        idle: &ctx.models.idle,
        objective: Objective::TotalEnergy,
        concurrency: 2.0,
        max_width: usize::MAX,
    };

    let mut g = c.benchmark_group("search");
    g.bench_function("exhaustive", |b| {
        b.iter(|| black_box(exhaustive_search(&est, true)))
    });
    g.bench_function("steepest_descent", |b| {
        b.iter(|| black_box(steepest_descent_search(&est, true)))
    });
    g.finish();

    // The §7.4 claims, asserted once.
    let ex = exhaustive_search(&est, true);
    let sd = steepest_descent_search(&est, true);
    assert!(
        (sd.stats.evaluations as f64) < 0.6 * ex.stats.evaluations as f64,
        "steepest descent must cut evaluations substantially"
    );
    assert!(
        sd.energy_j <= ex.energy_j * 1.10,
        "steepest descent quality"
    );
}

criterion_group!(overhead, bench_searches);
criterion_main!(overhead);
