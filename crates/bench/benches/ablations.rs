//! Design-choice ablations called out in DESIGN.md: the frequency
//! coordination heuristic (§5.3, the paper picked the arithmetic mean) and
//! the fine-grained task-coarsening threshold.

use criterion::{criterion_group, criterion_main, Criterion};
use joss_bench::shared_context;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::ModelSched;
use joss_core::Coordination;
use joss_workloads::{alya, stencil, Scale};
use std::hint::black_box;

fn bench_coordination(c: &mut Criterion) {
    let ctx = shared_context();
    let graph = stencil::stencil(512, 16, Scale::Divided(400));
    let mut g = c.benchmark_group("coordination");
    g.sample_size(10);
    for (name, coord) in [
        ("average", Coordination::Average),
        ("min", Coordination::Min),
        ("max", Coordination::Max),
        ("weighted", Coordination::Weighted),
        ("none", Coordination::None),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sched = ModelSched::joss(ctx.models.clone());
                let cfg = EngineConfig {
                    coordination: coord,
                    ..EngineConfig::default()
                };
                let report = SimEngine::run(&ctx.machine, &graph, &mut sched, cfg);
                assert_eq!(report.tasks, graph.n_tasks());
                black_box(report.total_j())
            })
        });
    }
    g.finish();
}

fn bench_coarsening(c: &mut Criterion) {
    let ctx = shared_context();
    // Alya has the suite's finest-grained tasks — the coarsening target.
    let graph = alya::alya(Scale::Divided(400));
    let mut g = c.benchmark_group("coarsening");
    g.sample_size(10);
    for (name, threshold) in [("off", 0.0), ("200us", 200e-6), ("2ms", 2e-3)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sched =
                    ModelSched::joss(ctx.models.clone()).with_coarsen_threshold(threshold);
                let report =
                    SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
                assert_eq!(report.tasks, graph.n_tasks());
                black_box((report.total_j(), report.dvfs_transitions))
            })
        });
    }
    g.finish();
}

criterion_group!(ablations, bench_coordination, bench_coarsening);
criterion_main!(ablations);
