//! Real-thread work-stealing executor scaling on the host machine.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use joss_core::native::NativeExecutor;
use joss_dag::{generators, KernelSpec};
use joss_platform::TaskShape;
use std::hint::black_box;

fn bench_native(c: &mut Criterion) {
    let graph = generators::independent(
        "bag",
        KernelSpec::new("k", TaskShape::new(0.001, 0.0)),
        2_000,
    );
    let mut g = c.benchmark_group("native_executor");
    g.throughput(Throughput::Elements(graph.n_tasks() as u64));
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("{workers}_workers"), |b| {
            b.iter(|| {
                let stats = NativeExecutor::new(workers).execute(&graph, |t| {
                    black_box((0..2_000u64).fold(t.0 as u64, |a, b| a.wrapping_add(b * b)));
                });
                assert_eq!(stats.total_tasks(), graph.n_tasks());
                black_box(stats)
            })
        });
    }
    g.finish();
}

criterion_group!(native, bench_native);
criterion_main!(native);
