//! Platform topology: clusters, cores, frequency tables, voltage maps.
//!
//! A [`PlatformSpec`] is the static description of a simulated machine: how
//! many clusters, how many cores each, which DVFS operating points exist, and
//! the electrical parameters that drive the ground-truth power model.

use crate::config::CoreType;
use serde::{Deserialize, Serialize};

/// Static description of one CPU cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Which core type this cluster hosts.
    pub core_type: CoreType,
    /// Number of identical cores in the cluster.
    pub n_cores: usize,
    /// Sustained instructions-per-cycle of one core on compute-bound code.
    pub ipc: f64,
    /// Dynamic capacitance coefficient: `P_dyn = c_dyn * V^2 * f_GHz * activity`
    /// watts per active core.
    pub c_dyn: f64,
    /// Frequency-independent power drawn by an *active* core (uncore,
    /// fabric, instruction supply), watts. This is what makes very low
    /// frequencies energy-inefficient on real silicon: compute time grows as
    /// `1/f` while this term does not shrink.
    pub active_base_w: f64,
    /// Idle (leakage + clock-tree) power per powered-on core at `V_max`,
    /// scaled by `V^2` at lower voltages.
    pub idle_w_per_core: f64,
    /// Voltage at the lowest operating frequency (volts).
    pub v_min: f64,
    /// Voltage at the highest operating frequency (volts).
    pub v_max: f64,
    /// Convexity of the V-f curve: voltage follows
    /// `v_min + (v_max - v_min) * t^v_exp` over the normalized frequency
    /// range. Real curves are convex (`> 1`): flat at low frequencies,
    /// steep near the top — which is why the last GHz is so expensive.
    pub v_exp: f64,
    /// Peak per-core demand memory bandwidth in GB/s at maximum CPU frequency
    /// (how fast one core can issue/consume DRAM traffic).
    pub core_bw_gbs: f64,
}

impl ClusterSpec {
    /// Voltage at frequency `f_ghz` by linear interpolation over the
    /// cluster's frequency range (the TX2's V-f curve is close to linear).
    pub fn voltage(&self, f_ghz: f64, f_min_ghz: f64, f_max_ghz: f64) -> f64 {
        if f_max_ghz <= f_min_ghz {
            return self.v_max;
        }
        let t = ((f_ghz - f_min_ghz) / (f_max_ghz - f_min_ghz)).clamp(0.0, 1.0);
        self.v_min + crate::machine::powf_1fast(t, self.v_exp) * (self.v_max - self.v_min)
    }
}

/// Static description of the whole platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// The two clusters, indexed by [`CoreType::index`].
    pub clusters: [ClusterSpec; 2],
    /// CPU DVFS operating points in GHz (shared table for both clusters, as
    /// on the TX2), ascending.
    pub cpu_freqs_ghz: Vec<f64>,
    /// Memory DVFS operating points in GHz, ascending.
    pub mem_freqs_ghz: Vec<f64>,
    /// Peak DRAM bandwidth in GB/s at the maximum memory frequency.
    pub mem_bw_gbs: f64,
    /// Memory background power (refresh, PHY, controller) at the lowest
    /// memory frequency, watts.
    pub mem_bg_w_min: f64,
    /// Additional memory background power at the highest memory frequency
    /// (scales with `(fM/fM_max)^2` between the two), watts.
    pub mem_bg_w_span: f64,
    /// DRAM access energy in joules per gigabyte transferred.
    pub mem_energy_j_per_gb: f64,
    /// Latency of a cluster CPU frequency transition.
    pub cpu_dvfs_latency_us: u64,
    /// Latency of a memory frequency transition.
    pub mem_dvfs_latency_us: u64,
    /// Power sensor sampling period (INA3221 on the TX2: 5 ms).
    pub sensor_period_ms: u64,
}

impl PlatformSpec {
    /// A Jetson-TX2-like platform: 2 big (Denver-like) cores + 4 little
    /// (A57-like) cores, the paper's CPU frequency ladder
    /// {0.35, 0.65, 1.11, 1.57, 2.04} GHz and memory ladder
    /// {0.80, 1.33, 1.87} GHz.
    ///
    /// Electrical constants are calibrated so that rail powers land in the
    /// ranges of the paper's Fig. 5 (CPU rail ≲ 2 W for 2 little cores,
    /// memory rail ≲ 2 W) and so a single big core is ~3x faster than a
    /// little core on compute-bound kernels (§7.1 reports 3.4x for BMOD).
    pub fn tx2_like() -> Self {
        PlatformSpec {
            clusters: [
                ClusterSpec {
                    core_type: CoreType::Big,
                    n_cores: 2,
                    ipc: 2.60,
                    c_dyn: 0.78,
                    active_base_w: 0.19,
                    idle_w_per_core: 0.10,
                    v_min: 0.52,
                    v_max: 1.18,
                    v_exp: 1.6,
                    core_bw_gbs: 12.0,
                },
                ClusterSpec {
                    core_type: CoreType::Little,
                    n_cores: 4,
                    ipc: 0.75,
                    c_dyn: 0.42,
                    active_base_w: 0.10,
                    idle_w_per_core: 0.045,
                    v_min: 0.50,
                    v_max: 1.06,
                    v_exp: 1.6,
                    core_bw_gbs: 6.0,
                },
            ],
            cpu_freqs_ghz: vec![0.345, 0.652, 1.113, 1.574, 2.035],
            mem_freqs_ghz: vec![0.800, 1.331, 1.866],
            mem_bw_gbs: 28.0,
            mem_bg_w_min: 0.18,
            mem_bg_w_span: 0.75,
            mem_energy_j_per_gb: 0.105,
            cpu_dvfs_latency_us: 120,
            mem_dvfs_latency_us: 80,
            sensor_period_ms: 5,
        }
    }

    /// A larger hypothetical platform (8 big + 16 little cores, 8 CPU and 5
    /// memory frequencies) used by the §7.4 scalability analysis of search
    /// overheads.
    pub fn large() -> Self {
        let mut spec = Self::tx2_like();
        spec.clusters[0].n_cores = 8;
        spec.clusters[1].n_cores = 16;
        spec.cpu_freqs_ghz = vec![0.3, 0.55, 0.8, 1.05, 1.3, 1.55, 1.8, 2.05];
        spec.mem_freqs_ghz = vec![0.6, 0.9, 1.2, 1.5, 1.8];
        spec.mem_bw_gbs = 60.0;
        spec
    }

    /// Cluster description for a core type.
    pub fn cluster(&self, tc: CoreType) -> &ClusterSpec {
        &self.clusters[tc.index()]
    }

    /// Total core count across clusters.
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.n_cores).sum()
    }

    /// Lowest CPU frequency in GHz.
    pub fn fc_min_ghz(&self) -> f64 {
        self.cpu_freqs_ghz[0]
    }

    /// Highest CPU frequency in GHz.
    pub fn fc_max_ghz(&self) -> f64 {
        *self.cpu_freqs_ghz.last().expect("non-empty cpu freq table")
    }

    /// Highest memory frequency in GHz.
    pub fn fm_max_ghz(&self) -> f64 {
        *self.mem_freqs_ghz.last().expect("non-empty mem freq table")
    }

    /// Voltage of cluster `tc` at CPU frequency `f_ghz`.
    pub fn voltage(&self, tc: CoreType, f_ghz: f64) -> f64 {
        self.cluster(tc)
            .voltage(f_ghz, self.fc_min_ghz(), self.fc_max_ghz())
    }

    /// Validate internal consistency; used by constructors in tests and by
    /// downstream crates that build custom platforms.
    pub fn validate(&self) -> Result<(), String> {
        if self.cpu_freqs_ghz.is_empty() || self.mem_freqs_ghz.is_empty() {
            return Err("empty frequency table".into());
        }
        if !self.cpu_freqs_ghz.windows(2).all(|w| w[0] < w[1]) {
            return Err("cpu_freqs_ghz must be strictly ascending".into());
        }
        if !self.mem_freqs_ghz.windows(2).all(|w| w[0] < w[1]) {
            return Err("mem_freqs_ghz must be strictly ascending".into());
        }
        for c in &self.clusters {
            if c.n_cores == 0 {
                return Err(format!("cluster {:?} has zero cores", c.core_type));
            }
            if c.ipc <= 0.0 || c.c_dyn <= 0.0 || c.core_bw_gbs <= 0.0 {
                return Err(format!(
                    "cluster {:?} has non-positive parameters",
                    c.core_type
                ));
            }
            if c.v_min > c.v_max {
                return Err(format!("cluster {:?} has v_min > v_max", c.core_type));
            }
        }
        if self.mem_bw_gbs <= 0.0 || self.mem_energy_j_per_gb < 0.0 {
            return Err("non-positive memory parameters".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx2_is_valid() {
        let s = PlatformSpec::tx2_like();
        s.validate().unwrap();
        assert_eq!(s.total_cores(), 6);
        assert_eq!(s.cluster(CoreType::Big).n_cores, 2);
        assert_eq!(s.cluster(CoreType::Little).n_cores, 4);
    }

    #[test]
    fn large_is_valid() {
        let s = PlatformSpec::large();
        s.validate().unwrap();
        assert_eq!(s.total_cores(), 24);
        assert_eq!(s.cpu_freqs_ghz.len(), 8);
        assert_eq!(s.mem_freqs_ghz.len(), 5);
    }

    #[test]
    fn voltage_interpolates_monotonically() {
        let s = PlatformSpec::tx2_like();
        let mut prev = 0.0;
        for &f in &s.cpu_freqs_ghz {
            let v = s.voltage(CoreType::Big, f);
            assert!(v >= prev, "voltage must be non-decreasing in f");
            prev = v;
        }
        let big = s.cluster(CoreType::Big);
        assert!((s.voltage(CoreType::Big, s.fc_min_ghz()) - big.v_min).abs() < 1e-9);
        assert!((s.voltage(CoreType::Big, s.fc_max_ghz()) - big.v_max).abs() < 1e-9);
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = PlatformSpec::tx2_like();
        s.cpu_freqs_ghz = vec![1.0, 1.0];
        assert!(s.validate().is_err());

        let mut s = PlatformSpec::tx2_like();
        s.clusters[0].n_cores = 0;
        assert!(s.validate().is_err());

        let mut s = PlatformSpec::tx2_like();
        s.mem_freqs_ghz.clear();
        assert!(s.validate().is_err());
    }
}
