//! Ground-truth machine model: what the simulated hardware "actually does".
//!
//! Given a task's computational shape and a knob configuration, the model
//! produces execution time, CPU dynamic power and memory dynamic power. It is
//! the *oracle* that the runtime measures (with noise) and that the MPR models
//! in `joss-models` approximate — exactly the role real silicon plays for the
//! paper.
//!
//! The functional form follows the paper's decomposition
//! `Time = Time_comp + Time_stall` (§4.2) but with a richer coupling than the
//! regression models can represent (harmonic latency/bandwidth combination,
//! sublinear frequency exponents), so fitting them yields realistic residuals:
//!
//! * `Time_comp = work / (ipc * fC * NC^alpha)` — compute scales with core
//!   frequency and (per-kernel) moldable scalability `alpha`;
//! * `Time_stall = bytes / BW_eff`, where `BW_eff` harmonically combines the
//!   cores' demand bandwidth (growing with `fC` and `NC`) with the DRAM supply
//!   bandwidth (growing with `fM`) — core frequency indirectly changes how
//!   fast requests are issued, as observed in the paper;
//! * CPU dynamic power `= NC * c_dyn * V(fC)^2 * fC * activity(MB)` — stalled
//!   cores burn less than busy ones;
//! * memory dynamic power `= e_GB * achieved_BW * g(fM)` plus an
//!   `fM`-dependent background captured in idle power.

use crate::config::CoreType;
use crate::noise::NoiseModel;
use crate::time::Duration;
use crate::topology::PlatformSpec;
use serde::{Deserialize, Serialize};

/// `x.powf(y)` with the IEEE-754 `pow(1, y) == 1` special case branched
/// before the call: bit-identical for every input (the standard requires
/// `pow(1, y)` to be exactly `1.0` for any `y`, even NaN), but skips the
/// ~20 ns transcendental in the engine's overwhelmingly common operating
/// points — width-1 tasks (`nc == 1`) and maximum frequencies
/// (`f_rel == 1.0`).
#[inline]
pub(crate) fn powf_1fast(x: f64, y: f64) -> f64 {
    if x == 1.0 {
        1.0
    } else {
        x.powf(y)
    }
}

/// Exponent of demand-bandwidth growth with CPU frequency.
const DEMAND_FC_EXP: f64 = 0.55;
/// Exponent of demand-bandwidth growth with core count.
const DEMAND_NC_EXP: f64 = 0.85;
/// Exponent of supply-bandwidth growth with memory frequency.
const SUPPLY_FM_EXP: f64 = 0.92;
/// Fraction of dynamic CPU power still burned while stalled on memory.
const STALL_ACTIVITY: f64 = 0.30;
/// Memory access energy multiplier range over the fM ladder.
const MEM_E_FM_COUPLING: f64 = 0.20;

/// The computational shape of one task (or task partition workload).
///
/// This is everything the hardware needs to know to "execute" a task: how
/// many operations it performs, how much DRAM traffic it generates, and how
/// well it scales when molded across multiple cores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskShape {
    /// Total operations, in giga-ops (work done by all cores together).
    pub work_gops: f64,
    /// Total DRAM traffic, in gigabytes.
    pub bytes_gb: f64,
    /// Moldable scalability exponent: effective parallelism is `NC^alpha`.
    /// `1.0` = linear speedup, `0.0` = no benefit from extra cores.
    pub scal_alpha: f64,
}

impl TaskShape {
    /// A shape with the given work and traffic and near-linear scalability.
    pub fn new(work_gops: f64, bytes_gb: f64) -> Self {
        TaskShape {
            work_gops,
            bytes_gb,
            scal_alpha: 0.95,
        }
    }

    /// Set the moldable scalability exponent.
    pub fn with_scalability(mut self, alpha: f64) -> Self {
        self.scal_alpha = alpha.clamp(0.0, 1.0);
        self
    }

    /// Operations-per-byte ratio (the task-characteristic axis of the paper).
    pub fn ops_per_byte(&self) -> f64 {
        if self.bytes_gb <= 0.0 {
            f64::INFINITY
        } else {
            self.work_gops / self.bytes_gb
        }
    }

    /// Validity check used by property tests and builders.
    pub fn is_valid(&self) -> bool {
        self.work_gops >= 0.0
            && self.bytes_gb >= 0.0
            && (self.work_gops + self.bytes_gb) > 0.0
            && (0.0..=1.0).contains(&self.scal_alpha)
            && self.work_gops.is_finite()
            && self.bytes_gb.is_finite()
    }
}

/// Execution context that affects timing beyond the task's own knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct ExecContext {
    /// Aggregate DRAM bandwidth demand of the *other* concurrently running
    /// tasks, GB/s. Contention only bites when total demand exceeds supply:
    /// below saturation each task gets what it asks for; above it, supply is
    /// shared proportionally to demand (bandwidth-fair DRAM scheduling).
    pub other_demand_gbs: f64,
}

impl ExecContext {
    /// A task running alone on the machine.
    pub fn alone() -> Self {
        ExecContext {
            other_demand_gbs: 0.0,
        }
    }
}

/// The measured outcome of executing a task at one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecSample {
    /// Wall-clock (virtual) execution time of the task, noise included.
    pub duration: Duration,
    /// CPU dynamic power over the task's execution, all `NC` cores combined,
    /// watts, noise included.
    pub cpu_dyn_w: f64,
    /// Memory dynamic power attributable to this task, watts, noise included.
    pub mem_dyn_w: f64,
    /// Ground-truth memory-boundness (stall fraction), noise-free. Exposed
    /// for accuracy evaluation only; schedulers must not read it.
    pub true_mb: f64,
}

/// Calibratable parameters beyond the [`PlatformSpec`] electricals.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineParams {
    /// Per-task fixed runtime overhead added to every execution (dispatch,
    /// cache warmup), seconds.
    pub task_overhead_s: f64,
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams {
            task_overhead_s: 3.0e-6,
        }
    }
}

/// Ground-truth model of one platform: timing + power oracle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineModel {
    /// Static platform description (topology, frequency ladders, electricals).
    pub spec: PlatformSpec,
    /// Measurement noise generator.
    pub noise: NoiseModel,
    /// Extra calibration parameters.
    pub params: MachineParams,
}

impl MachineModel {
    /// Build a TX2-like machine with calibrated noise.
    pub fn tx2(seed: u64) -> Self {
        MachineModel {
            spec: PlatformSpec::tx2_like(),
            noise: NoiseModel::calibrated(seed),
            params: MachineParams::default(),
        }
    }

    /// Build a noise-free machine (useful as a test oracle).
    pub fn tx2_noiseless() -> Self {
        MachineModel {
            spec: PlatformSpec::tx2_like(),
            noise: NoiseModel::disabled(0),
            params: MachineParams::default(),
        }
    }

    /// Compute-side time component (seconds), before noise.
    pub fn compute_time_s(&self, shape: &TaskShape, tc: CoreType, nc: usize, fc_ghz: f64) -> f64 {
        let cl = self.spec.cluster(tc);
        let parallelism = powf_1fast(nc as f64, shape.scal_alpha);
        shape.work_gops / (cl.ipc * fc_ghz * parallelism)
    }

    /// Memory-stall time component (seconds), before noise.
    pub fn stall_time_s(
        &self,
        shape: &TaskShape,
        tc: CoreType,
        nc: usize,
        fc_ghz: f64,
        fm_ghz: f64,
        ctx: &ExecContext,
    ) -> f64 {
        if shape.bytes_gb <= 0.0 {
            return 0.0;
        }
        let cl = self.spec.cluster(tc);
        let fc_rel = fc_ghz / self.spec.fc_max_ghz();
        let fm_rel = fm_ghz / self.spec.fm_max_ghz();
        let demand = cl.core_bw_gbs
            * powf_1fast(nc as f64, DEMAND_NC_EXP)
            * powf_1fast(fc_rel, DEMAND_FC_EXP);
        let supply_total = self.spec.mem_bw_gbs * powf_1fast(fm_rel, SUPPLY_FM_EXP);
        // Contention: below saturation the other streams do not slow us
        // down; above it, supply is split proportionally to demand.
        let other = ctx.other_demand_gbs.max(0.0);
        let supply = if demand + other <= supply_total {
            supply_total - other
        } else {
            supply_total * demand / (demand + other)
        };
        // Harmonic combination: latency-limited when demand << supply,
        // bandwidth-limited when demand >> supply.
        let eff_bw = 1.0 / (1.0 / demand + 1.0 / supply.max(1e-9));
        shape.bytes_gb / eff_bw
    }

    /// Noise-free execution time (seconds) including fixed task overhead.
    pub fn clean_time_s(
        &self,
        shape: &TaskShape,
        tc: CoreType,
        nc: usize,
        fc_ghz: f64,
        fm_ghz: f64,
        ctx: &ExecContext,
    ) -> f64 {
        self.compute_time_s(shape, tc, nc, fc_ghz)
            + self.stall_time_s(shape, tc, nc, fc_ghz, fm_ghz, ctx)
            + self.params.task_overhead_s
    }

    /// Execute a task: the full measured sample at one configuration.
    ///
    /// `keys` identifies the measurement context (task uid, invocation count,
    /// configuration) for deterministic noise.
    // The oracle call mirrors the paper's knob tuple <shape, TC, NC, fC, fM>
    // plus interference context and noise keys; bundling them would obscure it.
    #[allow(clippy::too_many_arguments)]
    pub fn execute(
        &self,
        shape: &TaskShape,
        tc: CoreType,
        nc: usize,
        fc_ghz: f64,
        fm_ghz: f64,
        ctx: &ExecContext,
        keys: &[u64],
    ) -> ExecSample {
        debug_assert!(shape.is_valid(), "invalid task shape {shape:?}");
        debug_assert!(nc >= 1);
        let t_comp = self.compute_time_s(shape, tc, nc, fc_ghz);
        let t_stall = self.stall_time_s(shape, tc, nc, fc_ghz, fm_ghz, ctx);
        let t_clean = t_comp + t_stall + self.params.task_overhead_s;
        let mb = if t_clean > 0.0 {
            t_stall / t_clean
        } else {
            0.0
        };

        // One memoized probe yields all three noise factors (bit-identical
        // to three `factor` calls; see `NoiseModel::factors3`).
        let [f_time, f_cpu, f_mem] = self.noise.factors3(keys);
        let duration_s = t_clean * f_time;

        // CPU dynamic power: switching power scales with V^2*f and droops
        // while stalled; the active-base term is paid by every active core
        // regardless of frequency (uncore/fabric).
        let cl = self.spec.cluster(tc);
        let v = self.spec.voltage(tc, fc_ghz);
        let activity = (1.0 - mb) + STALL_ACTIVITY * mb;
        let cpu_dyn = nc as f64 * (cl.c_dyn * v * v * fc_ghz * activity + cl.active_base_w) * f_cpu;

        // Memory dynamic power: per-byte energy at the achieved bandwidth,
        // mildly increasing with memory frequency (higher-rate I/O costs more
        // per bit), matching the paper's Fig. 5b trends.
        let achieved_bw = if t_clean > 0.0 {
            shape.bytes_gb / t_clean
        } else {
            0.0
        };
        let fm_rel = fm_ghz / self.spec.fm_max_ghz();
        let e_gb =
            self.spec.mem_energy_j_per_gb * (1.0 - MEM_E_FM_COUPLING + MEM_E_FM_COUPLING * fm_rel);
        let mem_dyn = e_gb * achieved_bw * f_mem;

        ExecSample {
            duration: Duration::from_secs_f64(duration_s),
            cpu_dyn_w: cpu_dyn,
            mem_dyn_w: mem_dyn,
            true_mb: mb,
        }
    }

    /// Idle power of one powered-on core of cluster `tc` at frequency
    /// `fc_ghz` (leakage scales with `V^2`).
    pub fn cpu_idle_w_per_core(&self, tc: CoreType, fc_ghz: f64) -> f64 {
        let cl = self.spec.cluster(tc);
        let v = self.spec.voltage(tc, fc_ghz);
        cl.idle_w_per_core * (v / cl.v_max).powi(2)
    }

    /// Idle power of a whole cluster at frequency `fc_ghz`.
    pub fn cluster_idle_w(&self, tc: CoreType, fc_ghz: f64) -> f64 {
        self.cpu_idle_w_per_core(tc, fc_ghz) * self.spec.cluster(tc).n_cores as f64
    }

    /// Memory background (idle) power at memory frequency `fm_ghz`: refresh,
    /// PHY and controller power that is paid whenever the rail is up.
    pub fn mem_idle_w(&self, fm_ghz: f64) -> f64 {
        let fm_rel = fm_ghz / self.spec.fm_max_ghz();
        self.spec.mem_bg_w_min + self.spec.mem_bg_w_span * fm_rel * fm_rel
    }

    /// Total platform idle power with both clusters at the given frequencies.
    pub fn platform_idle_w(&self, fc_big_ghz: f64, fc_little_ghz: f64, fm_ghz: f64) -> f64 {
        self.cluster_idle_w(CoreType::Big, fc_big_ghz)
            + self.cluster_idle_w(CoreType::Little, fc_little_ghz)
            + self.mem_idle_w(fm_ghz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MachineModel {
        MachineModel::tx2_noiseless()
    }

    fn max_cfg(m: &MachineModel) -> (f64, f64) {
        (m.spec.fc_max_ghz(), m.spec.fm_max_ghz())
    }

    #[test]
    fn compute_time_scales_with_frequency() {
        let m = m();
        let s = TaskShape::new(1.0, 0.0);
        let t_hi = m.compute_time_s(&s, CoreType::Big, 1, 2.035);
        let t_lo = m.compute_time_s(&s, CoreType::Big, 1, 1.0175);
        assert!(
            (t_lo / t_hi - 2.0).abs() < 1e-9,
            "compute time must scale ~linearly with fC"
        );
    }

    #[test]
    fn big_core_beats_little_on_compute() {
        let m = m();
        let s = TaskShape::new(1.0, 0.001);
        let (fc, fm) = max_cfg(&m);
        let ctx = ExecContext::default();
        let tb = m.clean_time_s(&s, CoreType::Big, 1, fc, fm, &ctx);
        let tl = m.clean_time_s(&s, CoreType::Little, 1, fc, fm, &ctx);
        let ratio = tl / tb;
        assert!(
            ratio > 2.5 && ratio < 4.5,
            "big/little compute ratio {ratio} out of TX2 range"
        );
    }

    #[test]
    fn stall_time_drops_with_memory_frequency() {
        let m = m();
        let s = TaskShape::new(0.001, 1.0);
        let ctx = ExecContext::default();
        let t_hi = m.stall_time_s(&s, CoreType::Big, 2, 2.035, 1.866, &ctx);
        let t_lo = m.stall_time_s(&s, CoreType::Big, 2, 2.035, 0.800, &ctx);
        assert!(t_lo > t_hi, "lower fM must increase stall time");
    }

    #[test]
    fn stall_time_depends_on_core_frequency() {
        // Core frequency changes the issue rate, hence stall time (paper §4.2).
        let m = m();
        let s = TaskShape::new(0.001, 1.0);
        let ctx = ExecContext::default();
        let t_hi = m.stall_time_s(&s, CoreType::Big, 1, 2.035, 1.866, &ctx);
        let t_lo = m.stall_time_s(&s, CoreType::Big, 1, 0.345, 1.866, &ctx);
        assert!(
            t_lo > t_hi * 1.5,
            "low fC should throttle memory issue rate"
        );
    }

    #[test]
    fn true_mb_separates_task_classes() {
        let m = m();
        let ctx = ExecContext::default();
        let (fc, fm) = max_cfg(&m);
        // MM-like tile: high ops/byte.
        let mm = TaskShape::new(0.0335, 0.0016);
        // MC-like copy: low ops/byte.
        let mc = TaskShape::new(0.0335, 0.268);
        let smm = m.execute(&mm, CoreType::Big, 1, fc, fm, &ctx, &[1]);
        let smc = m.execute(&mc, CoreType::Big, 1, fc, fm, &ctx, &[2]);
        assert!(
            smm.true_mb < 0.15,
            "MM tile should be compute-bound, mb={}",
            smm.true_mb
        );
        assert!(
            smc.true_mb > 0.6,
            "MC tile should be memory-bound, mb={}",
            smc.true_mb
        );
    }

    #[test]
    fn cpu_power_increases_with_frequency_and_cores() {
        let m = m();
        let s = TaskShape::new(1.0, 0.01);
        let ctx = ExecContext::default();
        let p1 = m
            .execute(&s, CoreType::Little, 1, 1.113, 1.866, &ctx, &[3])
            .cpu_dyn_w;
        let p2 = m
            .execute(&s, CoreType::Little, 2, 1.113, 1.866, &ctx, &[3])
            .cpu_dyn_w;
        let p_hi = m
            .execute(&s, CoreType::Little, 1, 2.035, 1.866, &ctx, &[3])
            .cpu_dyn_w;
        assert!(p2 > p1 * 1.8, "two cores should draw ~2x power");
        assert!(p_hi > p1 * 2.0, "V^2*f scaling should be superlinear in f");
    }

    #[test]
    fn cpu_rail_power_in_tx2_range() {
        // Paper Fig. 5a: 2 little cores at max config draw < ~2 W on the CPU rail.
        let m = m();
        let compute = TaskShape::new(1.0, 0.0001);
        let ctx = ExecContext::default();
        let (fc, fm) = max_cfg(&m);
        let p = m
            .execute(&compute, CoreType::Little, 2, fc, fm, &ctx, &[4])
            .cpu_dyn_w
            + m.cluster_idle_w(CoreType::Little, fc);
        assert!(p > 0.5 && p < 2.5, "little x2 max power {p} out of range");
    }

    #[test]
    fn mem_power_increases_with_bandwidth_and_fm() {
        let m = m();
        let stream = TaskShape::new(0.001, 1.0);
        let compute = TaskShape::new(1.0, 0.0001);
        let ctx = ExecContext::default();
        let (fc, fm) = max_cfg(&m);
        let p_stream = m
            .execute(&stream, CoreType::Big, 2, fc, fm, &ctx, &[5])
            .mem_dyn_w;
        let p_compute = m
            .execute(&compute, CoreType::Big, 2, fc, fm, &ctx, &[5])
            .mem_dyn_w;
        assert!(
            p_stream > 5.0 * p_compute.max(1e-9),
            "streaming harder on memory rail"
        );
        let idle_hi = m.mem_idle_w(1.866);
        let idle_lo = m.mem_idle_w(0.800);
        assert!(idle_hi > idle_lo, "memory background power grows with fM");
    }

    #[test]
    fn contention_bites_only_past_saturation() {
        let m = m();
        let s = TaskShape::new(0.001, 1.0);
        let (fc, fm) = max_cfg(&m);
        let alone = m.clean_time_s(&s, CoreType::Little, 1, fc, fm, &ExecContext::alone());
        // 4 GB/s of background traffic: total demand still below the 28 GB/s
        // supply, so only mild slowdown (the slack shrinks).
        let light = m.clean_time_s(
            &s,
            CoreType::Little,
            1,
            fc,
            fm,
            &ExecContext {
                other_demand_gbs: 4.0,
            },
        );
        // 40 GB/s of background traffic: saturated, proportional sharing.
        let heavy = m.clean_time_s(
            &s,
            CoreType::Little,
            1,
            fc,
            fm,
            &ExecContext {
                other_demand_gbs: 40.0,
            },
        );
        assert!(
            light < heavy,
            "saturation must hurt more than light sharing"
        );
        assert!(
            heavy > 1.5 * alone,
            "heavy contention must slow streaming tasks"
        );
        assert!(light < 1.3 * alone, "light sharing must be near-free");
    }

    #[test]
    fn moldable_scaling_follows_alpha() {
        let m = m();
        let s = TaskShape::new(1.0, 0.0).with_scalability(1.0);
        let t1 = m.compute_time_s(&s, CoreType::Little, 1, 1.0);
        let t4 = m.compute_time_s(&s, CoreType::Little, 4, 1.0);
        assert!((t1 / t4 - 4.0).abs() < 1e-9, "alpha=1 is linear speedup");
        let s0 = s.with_scalability(0.0);
        let t1n = m.compute_time_s(&s0, CoreType::Little, 1, 1.0);
        let t4n = m.compute_time_s(&s0, CoreType::Little, 4, 1.0);
        assert!((t1n - t4n).abs() < 1e-12, "alpha=0 gains nothing");
    }

    #[test]
    fn noise_perturbs_but_preserves_scale() {
        let noisy = MachineModel::tx2(42);
        let clean = MachineModel::tx2_noiseless();
        let s = TaskShape::new(0.1, 0.01);
        let ctx = ExecContext::default();
        let (fc, fm) = max_cfg(&clean);
        let a = noisy.execute(&s, CoreType::Big, 1, fc, fm, &ctx, &[7, 1]);
        let b = clean.execute(&s, CoreType::Big, 1, fc, fm, &ctx, &[7, 1]);
        let rel =
            (a.duration.as_secs_f64() - b.duration.as_secs_f64()).abs() / b.duration.as_secs_f64();
        assert!(rel < 0.15, "time noise should be small, rel={rel}");
        assert_ne!(a.duration, b.duration);
    }

    #[test]
    fn idle_power_drops_with_voltage() {
        let m = m();
        let hi = m.cluster_idle_w(CoreType::Big, 2.035);
        let lo = m.cluster_idle_w(CoreType::Big, 0.345);
        assert!(lo < hi, "idle power scales with V^2");
        assert!(lo > 0.0);
    }

    #[test]
    fn ops_per_byte_reflects_intensity() {
        assert!(
            TaskShape::new(1.0, 0.001).ops_per_byte() > TaskShape::new(0.001, 1.0).ops_per_byte()
        );
        assert_eq!(TaskShape::new(1.0, 0.0).ops_per_byte(), f64::INFINITY);
    }
}
