//! Deterministic measurement noise.
//!
//! Real measurements on the TX2 are noisy (the paper repeats every experiment
//! ten times and averages). We emulate this with *deterministic* noise keyed
//! by `(seed, task, configuration, quantity)` so that:
//!
//! * repeated identical invocations observe the same "measurement" — runs are
//!   bit-for-bit reproducible;
//! * different tasks/configurations see independent residuals, so regression
//!   models trained on the platform have realistic, non-zero error.
//!
//! Noise magnitudes are calibrated per rail so the MPR models land near the
//! paper's reported accuracies: execution time ~97%, CPU power ~90%, memory
//! power ~80% (Fig. 10).

use serde::{Deserialize, Serialize};

/// SplitMix64: tiny, high-quality 64-bit mixer used as a stateless hash RNG.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary number of u64 keys into one, starting from `h`.
///
/// Folding keys directly keeps [`NoiseModel::factor`] allocation-free: the
/// hash of `[seed, tag, keys...]` is produced by seeding the fold with the
/// prefix instead of materializing the concatenated slice.
#[inline]
fn mix_into(mut h: u64, keys: &[u64]) -> u64 {
    for &k in keys {
        h = splitmix64(h ^ k);
    }
    h
}

/// Initial state of the key fold.
const MIX_INIT: u64 = 0x853C_49E6_748F_EA9B;

/// Uniform in [0, 1) from a key.
#[inline]
fn unit(key: u64) -> f64 {
    // 53 mantissa bits.
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box-Muller from two decorrelated uniforms.
#[inline]
fn std_normal(key: u64) -> f64 {
    let u1 = unit(key).max(1e-12);
    let u2 = unit(key.wrapping_add(0x9E37_79B9_7F4A_7C15));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Which measured quantity is being perturbed; each gets an independent
/// noise stream and its own magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantity {
    /// Task execution time.
    Time,
    /// CPU rail power.
    CpuPower,
    /// Memory rail power.
    MemPower,
}

impl Quantity {
    fn tag(self) -> u64 {
        match self {
            Quantity::Time => 0x54_49_4D_45,     // "TIME"
            Quantity::CpuPower => 0x43_50_55_50, // "CPUP"
            Quantity::MemPower => 0x4D_45_4D_50, // "MEMP"
        }
    }
}

/// Deterministic multiplicative noise model for platform measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Global seed; distinct seeds give statistically independent platforms.
    pub seed: u64,
    /// Relative (1-sigma) noise on execution time.
    pub sigma_time: f64,
    /// Relative (1-sigma) noise on CPU power.
    pub sigma_cpu_power: f64,
    /// Relative (1-sigma) noise on memory power.
    pub sigma_mem_power: f64,
}

impl NoiseModel {
    /// Calibrated default: time 2%, CPU power 6%, memory power 30%.
    ///
    /// Chosen so the three MPR model accuracies land near the paper's
    /// 97% / 90% / 80% (Fig. 10): residuals combine this measurement noise
    /// with the structural mismatch between the quadratic regression form and
    /// the ground-truth machine model.
    pub fn calibrated(seed: u64) -> Self {
        NoiseModel {
            seed,
            sigma_time: 0.02,
            sigma_cpu_power: 0.06,
            sigma_mem_power: 0.30,
        }
    }

    /// Noise disabled — measurements equal the analytic ground truth.
    pub fn disabled(seed: u64) -> Self {
        NoiseModel {
            seed,
            sigma_time: 0.0,
            sigma_cpu_power: 0.0,
            sigma_mem_power: 0.0,
        }
    }

    /// Multiplicative factor (mean 1) for a quantity measured under a keyed
    /// context. The factor is clamped to [0.5, 1.5] to keep measurements
    /// physical even in the distribution tails.
    pub fn factor(&self, q: Quantity, keys: &[u64]) -> f64 {
        let sigma = match q {
            Quantity::Time => self.sigma_time,
            Quantity::CpuPower => self.sigma_cpu_power,
            Quantity::MemPower => self.sigma_mem_power,
        };
        if sigma == 0.0 {
            return 1.0;
        }
        // Identical to hashing `[seed, tag, keys...]` as one slice, without
        // building it: this runs three times per simulated task execution.
        let h = mix_into(mix_into(MIX_INIT, &[self.seed, q.tag()]), keys);
        (1.0 + sigma * std_normal(h)).clamp(0.5, 1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let n = NoiseModel::calibrated(7);
        let a = n.factor(Quantity::Time, &[1, 2, 3]);
        let b = n.factor(Quantity::Time, &[1, 2, 3]);
        assert_eq!(a, b);
        let c = n.factor(Quantity::Time, &[1, 2, 4]);
        assert_ne!(a, c);
    }

    #[test]
    fn quantities_are_independent_streams() {
        let n = NoiseModel::calibrated(7);
        let t = n.factor(Quantity::Time, &[42]);
        let p = n.factor(Quantity::CpuPower, &[42]);
        let m = n.factor(Quantity::MemPower, &[42]);
        assert!(t != p && p != m && t != m);
    }

    #[test]
    fn disabled_noise_is_identity() {
        let n = NoiseModel::disabled(0);
        assert_eq!(n.factor(Quantity::Time, &[9]), 1.0);
        assert_eq!(n.factor(Quantity::MemPower, &[9]), 1.0);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let n = NoiseModel::calibrated(1234);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let count = 20_000;
        for i in 0..count {
            let f = n.factor(Quantity::MemPower, &[i]);
            sum += f;
            sum_sq += f * f;
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        let sd = var.sqrt();
        // Clamping at [0.5, 1.5] trims the tails slightly below sigma.
        assert!((sd - 0.30).abs() < 0.04, "sd {sd}");
    }

    #[test]
    fn factors_stay_clamped() {
        let n = NoiseModel {
            seed: 5,
            sigma_time: 0.8,
            sigma_cpu_power: 0.8,
            sigma_mem_power: 0.8,
        };
        for i in 0..5_000 {
            let f = n.factor(Quantity::Time, &[i]);
            assert!((0.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseModel::calibrated(1).factor(Quantity::Time, &[1]);
        let b = NoiseModel::calibrated(2).factor(Quantity::Time, &[1]);
        assert_ne!(a, b);
    }
}
