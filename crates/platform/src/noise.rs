//! Deterministic measurement noise.
//!
//! Real measurements on the TX2 are noisy (the paper repeats every experiment
//! ten times and averages). We emulate this with *deterministic* noise keyed
//! by `(seed, task, configuration, quantity)` so that:
//!
//! * repeated identical invocations observe the same "measurement" — runs are
//!   bit-for-bit reproducible;
//! * different tasks/configurations see independent residuals, so regression
//!   models trained on the platform have realistic, non-zero error.
//!
//! Noise magnitudes are calibrated per rail so the MPR models land near the
//! paper's reported accuracies: execution time ~97%, CPU power ~90%, memory
//! power ~80% (Fig. 10).

use serde::{Deserialize, Serialize};

/// SplitMix64: tiny, high-quality 64-bit mixer used as a stateless hash RNG.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mix an arbitrary number of u64 keys into one, starting from `h`.
///
/// Folding keys directly keeps [`NoiseModel::factor`] allocation-free: the
/// hash of `[seed, tag, keys...]` is produced by seeding the fold with the
/// prefix instead of materializing the concatenated slice.
#[inline]
fn mix_into(mut h: u64, keys: &[u64]) -> u64 {
    for &k in keys {
        h = splitmix64(h ^ k);
    }
    h
}

/// Initial state of the key fold.
const MIX_INIT: u64 = 0x853C_49E6_748F_EA9B;

/// Uniform in [0, 1) from a key.
#[inline]
fn unit(key: u64) -> f64 {
    // 53 mantissa bits.
    (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// Standard normal via Box-Muller from two decorrelated uniforms.
#[inline]
fn std_normal(key: u64) -> f64 {
    let u1 = unit(key).max(1e-12);
    let u2 = unit(key.wrapping_add(0x9E37_79B9_7F4A_7C15));
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Slots in the per-thread normal-deviate memo (1 << 16 lines, 4 MiB).
const Z_CACHE_SLOTS: usize = 1 << 16;

/// One memo line: the three quantity hashes of a measurement context and
/// their standard-normal deviates. Deliberately at natural (48-byte)
/// size/alignment, **not** padded to a cache line: an over-aligned layout
/// forces `alloc_zeroed` off the `calloc` fast path into aligned-alloc
/// plus an explicit memset, and the whole point of [`zeroed_lines`] is
/// that the 4 MiB arrive as untouched lazy zero pages.
#[derive(Clone, Copy)]
struct ZLine {
    h: [u64; 3],
    z: [f64; 3],
}

/// Process-wide pool of retired memo stores. Campaign workers are scoped
/// threads that live for one campaign; if each fresh thread allocated its
/// own memo, every small campaign would re-fault the touched pages in (a
/// few milliseconds of minor faults — more than a small grid's entire
/// simulation time) and throw the accumulated lines away. Instead a dying
/// thread parks its store here and the next worker adopts it, pages and
/// memoized lines intact. The lock is touched twice per thread lifetime,
/// never on the measurement path.
static Z_POOL: std::sync::Mutex<Vec<Box<[ZLine]>>> = std::sync::Mutex::new(Vec::new());

/// A thread's checked-out memo store; returns it to [`Z_POOL`] on thread
/// death so the faulted-in pages and memo contents outlive the thread.
struct PooledLines(Option<Box<[ZLine]>>);

impl PooledLines {
    fn checkout() -> Self {
        let recycled = Z_POOL.lock().map(|mut p| p.pop()).unwrap_or(None);
        PooledLines(Some(recycled.unwrap_or_else(zeroed_lines)))
    }
}

impl Drop for PooledLines {
    fn drop(&mut self) {
        if let (Some(lines), Ok(mut pool)) = (self.0.take(), Z_POOL.lock()) {
            pool.push(lines);
        }
    }
}

thread_local! {
    /// Direct-mapped memo of `std_normal` over whole measurement contexts.
    ///
    /// `std_normal` is a *pure* function of its 64-bit key, and a line is
    /// used only when all three stored hashes match the probe, so
    /// memoization is bit-exact by construction: a hit returns exactly the
    /// values the transcendental chains (ln, sqrt, cos) would recompute,
    /// and a collision merely recomputes. The win comes from key reuse
    /// across *runs*: campaign grids re-execute the same tasks at the same
    /// configurations under different schedulers/targets, and repeated
    /// benchmark runs replay identical workloads — all hitting the same
    /// hashes. Adopting another thread's lines (via [`Z_POOL`]) is equally
    /// sound: a hash match returns the same pure values regardless of who
    /// computed them.
    ///
    /// The backing store is **zero-initialized by the allocator**
    /// ([`zeroed_lines`]), never written eagerly: with lazy zero pages a
    /// worker only pays for the lines it touches. An untouched line is
    /// all-zero, and a stored line at slot `i` always has
    /// `h[0] & mask == i`, so a zero line can only be falsely hit by the
    /// probe `h == [0; 3]` at slot 0 — which [`NoiseModel::factors3`]
    /// routes around the memo entirely.
    static Z_CACHE: std::cell::RefCell<Option<PooledLines>> =
        const { std::cell::RefCell::new(None) };
}

/// Return this thread's memo store (if any) to the shared pool.
///
/// Scoped campaign workers return their stores automatically when their
/// thread-local is destroyed, but a campaign that runs **inline on the
/// calling thread** (the single-worker fast path) leaves the store pinned
/// to that thread — fatal to a server whose long-lived executor threads
/// each run inline campaigns, because every executor would fault in its
/// own 4 MiB instead of adopting the one warm store. Campaign executors
/// call this when a campaign finishes; between campaigns the store sits
/// in the pool, pages and memoized lines intact, ready for whichever
/// thread runs the next one.
pub fn release_thread_memo() {
    Z_CACHE.with(|cache| {
        if let Ok(mut cache) = cache.try_borrow_mut() {
            cache.take(); // drop → PooledLines returns the store to Z_POOL
        }
    });
}

/// `Z_CACHE_SLOTS` zeroed [`ZLine`]s straight from the allocator: a 4 MiB
/// zeroed request is served as untouched (lazy) zero pages, so creation is
/// O(1) and memory is only committed per cache line actually probed.
fn zeroed_lines() -> Box<[ZLine]> {
    let layout = std::alloc::Layout::array::<ZLine>(Z_CACHE_SLOTS).expect("cache layout");
    // SAFETY: `ZLine` is plain old data (u64/f64 arrays) for which the
    // all-zero bit pattern is a valid value; the pointer is allocated with
    // this exact layout and ownership moves into the `Box`, whose drop
    // deallocates with the same layout.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut ZLine;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Box::from_raw(std::ptr::slice_from_raw_parts_mut(ptr, Z_CACHE_SLOTS))
    }
}

/// Which measured quantity is being perturbed; each gets an independent
/// noise stream and its own magnitude.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Quantity {
    /// Task execution time.
    Time,
    /// CPU rail power.
    CpuPower,
    /// Memory rail power.
    MemPower,
}

impl Quantity {
    fn tag(self) -> u64 {
        match self {
            Quantity::Time => 0x54_49_4D_45,     // "TIME"
            Quantity::CpuPower => 0x43_50_55_50, // "CPUP"
            Quantity::MemPower => 0x4D_45_4D_50, // "MEMP"
        }
    }
}

/// Deterministic multiplicative noise model for platform measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Global seed; distinct seeds give statistically independent platforms.
    pub seed: u64,
    /// Relative (1-sigma) noise on execution time.
    pub sigma_time: f64,
    /// Relative (1-sigma) noise on CPU power.
    pub sigma_cpu_power: f64,
    /// Relative (1-sigma) noise on memory power.
    pub sigma_mem_power: f64,
}

impl NoiseModel {
    /// Calibrated default: time 2%, CPU power 6%, memory power 30%.
    ///
    /// Chosen so the three MPR model accuracies land near the paper's
    /// 97% / 90% / 80% (Fig. 10): residuals combine this measurement noise
    /// with the structural mismatch between the quadratic regression form and
    /// the ground-truth machine model.
    pub fn calibrated(seed: u64) -> Self {
        NoiseModel {
            seed,
            sigma_time: 0.02,
            sigma_cpu_power: 0.06,
            sigma_mem_power: 0.30,
        }
    }

    /// Noise disabled — measurements equal the analytic ground truth.
    pub fn disabled(seed: u64) -> Self {
        NoiseModel {
            seed,
            sigma_time: 0.0,
            sigma_cpu_power: 0.0,
            sigma_mem_power: 0.0,
        }
    }

    /// Multiplicative factor (mean 1) for a quantity measured under a keyed
    /// context. The factor is clamped to [0.5, 1.5] to keep measurements
    /// physical even in the distribution tails.
    pub fn factor(&self, q: Quantity, keys: &[u64]) -> f64 {
        let sigma = match q {
            Quantity::Time => self.sigma_time,
            Quantity::CpuPower => self.sigma_cpu_power,
            Quantity::MemPower => self.sigma_mem_power,
        };
        if sigma == 0.0 {
            return 1.0;
        }
        // Identical to hashing `[seed, tag, keys...]` as one slice, without
        // building it: this runs three times per simulated task execution.
        let h = mix_into(mix_into(MIX_INIT, &[self.seed, q.tag()]), keys);
        (1.0 + sigma * std_normal(h)).clamp(0.5, 1.5)
    }

    /// All three quantity factors for one measurement context, in
    /// [`Quantity`] declaration order (time, CPU power, memory power).
    ///
    /// Identical to calling [`NoiseModel::factor`] three times — the same
    /// hashes feed the same normal deviates — but the deviates go through a
    /// per-thread direct-mapped memo, so re-measuring a context already
    /// seen on this thread (re-running a benchmark, sweeping schedulers
    /// over one workload) skips the three Box-Muller evaluations. This is
    /// the path `MachineModel::execute` takes three times per simulated
    /// task.
    pub fn factors3(&self, keys: &[u64]) -> [f64; 3] {
        let sigmas = [self.sigma_time, self.sigma_cpu_power, self.sigma_mem_power];
        if sigmas == [0.0; 3] {
            return [1.0; 3];
        }
        let h = [
            mix_into(mix_into(MIX_INIT, &[self.seed, Quantity::Time.tag()]), keys),
            mix_into(
                mix_into(MIX_INIT, &[self.seed, Quantity::CpuPower.tag()]),
                keys,
            ),
            mix_into(
                mix_into(MIX_INIT, &[self.seed, Quantity::MemPower.tag()]),
                keys,
            ),
        ];
        let z = if h == [0; 3] {
            // Indistinguishable from an untouched (zeroed) cache line, so
            // never memoized; this hash triple does not occur in practice.
            [std_normal(h[0]), std_normal(h[1]), std_normal(h[2])]
        } else {
            Z_CACHE.with(|cache| {
                let mut cache = cache.borrow_mut();
                let lines = cache
                    .get_or_insert_with(PooledLines::checkout)
                    .0
                    .as_mut()
                    .expect("memo store present until drop");
                let line = &mut lines[(h[0] as usize) & (Z_CACHE_SLOTS - 1)];
                if line.h != h {
                    *line = ZLine {
                        h,
                        z: [std_normal(h[0]), std_normal(h[1]), std_normal(h[2])],
                    };
                }
                line.z
            })
        };
        let mut out = [1.0; 3];
        for i in 0..3 {
            if sigmas[i] != 0.0 {
                out[i] = (1.0 + sigmas[i] * z[i]).clamp(0.5, 1.5);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key() {
        let n = NoiseModel::calibrated(7);
        let a = n.factor(Quantity::Time, &[1, 2, 3]);
        let b = n.factor(Quantity::Time, &[1, 2, 3]);
        assert_eq!(a, b);
        let c = n.factor(Quantity::Time, &[1, 2, 4]);
        assert_ne!(a, c);
    }

    #[test]
    fn quantities_are_independent_streams() {
        let n = NoiseModel::calibrated(7);
        let t = n.factor(Quantity::Time, &[42]);
        let p = n.factor(Quantity::CpuPower, &[42]);
        let m = n.factor(Quantity::MemPower, &[42]);
        assert!(t != p && p != m && t != m);
    }

    #[test]
    fn disabled_noise_is_identity() {
        let n = NoiseModel::disabled(0);
        assert_eq!(n.factor(Quantity::Time, &[9]), 1.0);
        assert_eq!(n.factor(Quantity::MemPower, &[9]), 1.0);
    }

    #[test]
    fn noise_statistics_match_sigma() {
        let n = NoiseModel::calibrated(1234);
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        let count = 20_000;
        for i in 0..count {
            let f = n.factor(Quantity::MemPower, &[i]);
            sum += f;
            sum_sq += f * f;
        }
        let mean = sum / count as f64;
        let var = sum_sq / count as f64 - mean * mean;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
        let sd = var.sqrt();
        // Clamping at [0.5, 1.5] trims the tails slightly below sigma.
        assert!((sd - 0.30).abs() < 0.04, "sd {sd}");
    }

    #[test]
    fn factors_stay_clamped() {
        let n = NoiseModel {
            seed: 5,
            sigma_time: 0.8,
            sigma_cpu_power: 0.8,
            sigma_mem_power: 0.8,
        };
        for i in 0..5_000 {
            let f = n.factor(Quantity::Time, &[i]);
            assert!((0.5..=1.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = NoiseModel::calibrated(1).factor(Quantity::Time, &[1]);
        let b = NoiseModel::calibrated(2).factor(Quantity::Time, &[1]);
        assert_ne!(a, b);
    }
}
