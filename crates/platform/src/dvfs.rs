//! DVFS controllers for the shared frequency domains.
//!
//! The TX2 has three throttleable domains: the Denver cluster, the A57
//! cluster, and the memory subsystem (EMC/DRAM). All cores of a cluster share
//! one frequency; all tasks share the memory frequency. Transitions are not
//! free: each takes a latency, and a controller can only perform one
//! transition at a time, so conflicting requests from concurrent tasks
//! *serialize* — the interference the paper's frequency-coordination
//! heuristic (§5.3) is designed to mitigate.

use crate::config::FreqIndex;
use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// A frequency-controllable domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DvfsDomain {
    /// Big (Denver-like) CPU cluster.
    ClusterBig,
    /// Little (A57-like) CPU cluster.
    ClusterLittle,
    /// Memory subsystem.
    Memory,
}

/// Result of submitting a frequency request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsRequest {
    /// When the new frequency takes effect.
    pub effective_at: SimTime,
    /// Whether the request had to wait behind an in-flight transition.
    pub serialized: bool,
    /// Whether a transition actually happens (false if already at target and
    /// no transition was pending).
    pub transitioned: bool,
}

/// One frequency domain's controller: current operating point, transition
/// latency, and a timeline of committed transitions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DvfsController {
    domain: DvfsDomain,
    latency: Duration,
    /// Committed transition steps `(effective_time, freq)`, ascending in time.
    /// The first entry is the initial frequency at time zero.
    timeline: Vec<(SimTime, FreqIndex)>,
    /// Until when the controller hardware is busy transitioning.
    busy_until: SimTime,
    /// Statistics: total transitions performed.
    pub n_transitions: u64,
    /// Statistics: requests that had to serialize behind another transition.
    pub n_serialized: u64,
}

impl DvfsController {
    /// New controller starting at `initial` frequency.
    pub fn new(domain: DvfsDomain, initial: FreqIndex, latency: Duration) -> Self {
        DvfsController {
            domain,
            latency,
            timeline: vec![(SimTime::ZERO, initial)],
            busy_until: SimTime::ZERO,
            n_transitions: 0,
            n_serialized: 0,
        }
    }

    /// The domain this controller manages.
    pub fn domain(&self) -> DvfsDomain {
        self.domain
    }

    /// Frequency in effect at time `now`.
    pub fn freq_at(&self, now: SimTime) -> FreqIndex {
        match self.timeline.binary_search_by(|(t, _)| t.cmp(&now)) {
            Ok(i) => self.timeline[i].1,
            Err(0) => self.timeline[0].1,
            Err(i) => self.timeline[i - 1].1,
        }
    }

    /// The frequency the domain will settle at once all committed
    /// transitions complete (the target of the latest request).
    pub fn settled_freq(&self) -> FreqIndex {
        self.timeline.last().expect("timeline never empty").1
    }

    /// Submit a frequency request at time `now`.
    ///
    /// If the controller is mid-transition the request queues behind it
    /// (serialization). Requesting the already-settled frequency is a no-op.
    pub fn request(&mut self, target: FreqIndex, now: SimTime) -> DvfsRequest {
        let settled = self.settled_freq();
        if settled == target {
            return DvfsRequest {
                effective_at: self.busy_until.max(now),
                serialized: false,
                transitioned: false,
            };
        }
        let serialized = self.busy_until > now;
        let start = if serialized { self.busy_until } else { now };
        let effective = start + self.latency;
        self.busy_until = effective;
        self.timeline.push((effective, target));
        self.n_transitions += 1;
        if serialized {
            self.n_serialized += 1;
        }
        DvfsRequest {
            effective_at: effective,
            serialized,
            transitioned: true,
        }
    }

    /// Drop timeline entries strictly older than `horizon` (keeping the one
    /// in effect at `horizon`) to bound memory in long simulations.
    pub fn prune_before(&mut self, horizon: SimTime) {
        // Index of the last entry with time <= horizon.
        let keep_from = match self.timeline.binary_search_by(|(t, _)| t.cmp(&horizon)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        if keep_from > 0 {
            self.timeline.drain(..keep_from);
        }
    }

    /// All pending transition times after `now` (for the engine to schedule
    /// power-recomputation events).
    pub fn pending_after(&self, now: SimTime) -> impl Iterator<Item = SimTime> + '_ {
        self.timeline
            .iter()
            .map(|&(t, _)| t)
            .filter(move |&t| t > now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctrl() -> DvfsController {
        DvfsController::new(DvfsDomain::Memory, FreqIndex(2), Duration::from_micros(100))
    }

    #[test]
    fn initial_frequency_holds() {
        let c = ctrl();
        assert_eq!(c.freq_at(SimTime::ZERO), FreqIndex(2));
        assert_eq!(c.freq_at(SimTime::from_secs_f64(10.0)), FreqIndex(2));
    }

    #[test]
    fn transition_takes_latency() {
        let mut c = ctrl();
        let r = c.request(FreqIndex(0), SimTime::from_secs_f64(1.0));
        assert!(r.transitioned);
        assert!(!r.serialized);
        assert_eq!(
            r.effective_at,
            SimTime::from_secs_f64(1.0) + Duration::from_micros(100)
        );
        // Before effective: old frequency.
        assert_eq!(c.freq_at(SimTime::from_secs_f64(1.00005)), FreqIndex(2));
        // After: new frequency.
        assert_eq!(c.freq_at(SimTime::from_secs_f64(1.001)), FreqIndex(0));
    }

    #[test]
    fn same_target_is_noop() {
        let mut c = ctrl();
        let r = c.request(FreqIndex(2), SimTime::from_secs_f64(1.0));
        assert!(!r.transitioned);
        assert_eq!(c.n_transitions, 0);
    }

    #[test]
    fn conflicting_requests_serialize() {
        let mut c = ctrl();
        let t0 = SimTime::from_secs_f64(1.0);
        let r1 = c.request(FreqIndex(0), t0);
        let r2 = c.request(FreqIndex(1), t0); // while first is in flight
        assert!(r2.serialized);
        assert!(r2.effective_at > r1.effective_at);
        assert_eq!(c.n_serialized, 1);
        // Final settled frequency is the last request's target.
        assert_eq!(c.settled_freq(), FreqIndex(1));
        // Mid-flight frequency is the first target after r1 effective.
        assert_eq!(c.freq_at(r1.effective_at), FreqIndex(0));
        assert_eq!(c.freq_at(r2.effective_at), FreqIndex(1));
    }

    #[test]
    fn requesting_settled_target_mid_flight_is_noop() {
        let mut c = ctrl();
        let t0 = SimTime::from_secs_f64(1.0);
        c.request(FreqIndex(0), t0);
        let r = c.request(FreqIndex(0), t0);
        assert!(!r.transitioned);
        assert_eq!(c.n_transitions, 1);
    }

    #[test]
    fn prune_keeps_effective_entry() {
        let mut c = ctrl();
        c.request(FreqIndex(0), SimTime::from_secs_f64(1.0));
        c.request(FreqIndex(1), SimTime::from_secs_f64(2.0));
        c.request(FreqIndex(2), SimTime::from_secs_f64(3.0));
        c.prune_before(SimTime::from_secs_f64(2.5));
        assert_eq!(c.freq_at(SimTime::from_secs_f64(2.5)), FreqIndex(1));
        assert_eq!(c.freq_at(SimTime::from_secs_f64(3.5)), FreqIndex(2));
    }

    #[test]
    fn pending_after_lists_future_steps() {
        let mut c = ctrl();
        c.request(FreqIndex(0), SimTime::from_secs_f64(1.0));
        let pend: Vec<_> = c.pending_after(SimTime::from_secs_f64(1.0)).collect();
        assert_eq!(pend.len(), 1);
        assert!(pend[0] > SimTime::from_secs_f64(1.0));
        assert_eq!(c.pending_after(SimTime::from_secs_f64(5.0)).count(), 0);
    }
}
