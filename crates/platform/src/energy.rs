//! Energy accounting report: the per-run measurement record the paper's
//! evaluation figures are built from (CPU energy, memory energy, makespan).

use crate::power::{PowerSensor, PowerTrace, Rail};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Final energy/time account of one application run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyAccount {
    /// CPU energy (both clusters), joules — exact integration.
    pub cpu_j: f64,
    /// Memory energy, joules — exact integration.
    pub mem_j: f64,
    /// CPU energy as the sampled sensor saw it, joules.
    pub cpu_sampled_j: f64,
    /// Memory energy as the sampled sensor saw it, joules.
    pub mem_sampled_j: f64,
    /// Application makespan (virtual seconds).
    pub makespan_s: f64,
}

impl EnergyAccount {
    /// Assemble the account from the exact trace and the sampling sensor.
    pub fn from_measurements(trace: &PowerTrace, sensor: &PowerSensor, end: SimTime) -> Self {
        EnergyAccount {
            cpu_j: trace.cpu_energy_j(),
            mem_j: trace.energy_j(Rail::Mem),
            cpu_sampled_j: sensor.cpu_energy_j(),
            mem_sampled_j: sensor.mem_energy_j(),
            makespan_s: end.as_secs_f64(),
        }
    }

    /// Total (CPU + memory) energy, joules.
    pub fn total_j(&self) -> f64 {
        self.cpu_j + self.mem_j
    }

    /// Total sampled energy, joules.
    pub fn total_sampled_j(&self) -> f64 {
        self.cpu_sampled_j + self.mem_sampled_j
    }

    /// Relative error of the sampled estimate vs the exact integration.
    pub fn sampling_rel_error(&self) -> f64 {
        if self.total_j() <= 0.0 {
            return 0.0;
        }
        (self.total_sampled_j() - self.total_j()).abs() / self.total_j()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    #[test]
    fn account_assembles_and_totals() {
        let mut tr = PowerTrace::new(false);
        tr.set(SimTime::ZERO, [1.0, 1.0, 2.0]);
        let end = SimTime::from_secs_f64(5.0);
        tr.advance(end);
        let mut sensor = PowerSensor::new(Duration::from_millis(5));
        sensor.advance_to(end, |_| [1.0, 1.0, 2.0]);
        let acc = EnergyAccount::from_measurements(&tr, &sensor, end);
        assert!((acc.cpu_j - 10.0).abs() < 1e-9);
        assert!((acc.mem_j - 10.0).abs() < 1e-9);
        assert!((acc.total_j() - 20.0).abs() < 1e-9);
        assert!(
            acc.sampling_rel_error() < 1e-6,
            "constant power samples exactly"
        );
        assert!((acc.makespan_s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn zero_energy_has_zero_error() {
        let tr = PowerTrace::new(false);
        let sensor = PowerSensor::ina3221();
        let acc = EnergyAccount::from_measurements(&tr, &sensor, SimTime::ZERO);
        assert_eq!(acc.sampling_rel_error(), 0.0);
    }
}
