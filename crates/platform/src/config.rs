//! Knob configurations and the configuration space.
//!
//! The four knobs of the paper are `<TC, NC, fC, fM>`: core type, number of
//! cores, CPU cluster frequency, and memory frequency. [`KnobConfig`] is one
//! point in that space; [`ConfigSpace`] enumerates all valid points for a
//! platform and provides the neighbourhood structure used by the
//! steepest-descent search (paper Fig. 7).

use crate::topology::PlatformSpec;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The core type (cluster) a task is mapped to.
///
/// `Big` corresponds to the TX2's dual-core Denver cluster and `Little` to the
/// quad-core A57 cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoreType {
    /// High-performance cluster (Denver-like).
    Big,
    /// Lower-performance, higher-count cluster (A57-like).
    Little,
}

impl CoreType {
    /// Both core types, in a fixed order.
    pub const ALL: [CoreType; 2] = [CoreType::Big, CoreType::Little];

    /// Dense index (Big = 0, Little = 1) for table storage.
    pub fn index(self) -> usize {
        match self {
            CoreType::Big => 0,
            CoreType::Little => 1,
        }
    }

    /// The paper's name for this cluster on the TX2.
    pub fn paper_name(self) -> &'static str {
        match self {
            CoreType::Big => "Denver",
            CoreType::Little => "A57",
        }
    }
}

impl fmt::Display for CoreType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Index into a frequency table (CPU cluster table or memory table).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct FreqIndex(pub usize);

/// Index into the per-core-type table of valid core counts.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct NcIndex(pub usize);

/// One point in the four-knob configuration space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct KnobConfig {
    /// Core type (cluster).
    pub tc: CoreType,
    /// Index into [`ConfigSpace::nc_options`] for `tc`.
    pub nc: NcIndex,
    /// Index into the cluster's CPU frequency table.
    pub fc: FreqIndex,
    /// Index into the memory frequency table.
    pub fm: FreqIndex,
}

impl KnobConfig {
    /// Construct from raw indices.
    pub fn new(tc: CoreType, nc: NcIndex, fc: FreqIndex, fm: FreqIndex) -> Self {
        KnobConfig { tc, nc, fc, fm }
    }
}

/// Enumeration of every valid `<TC, NC, fC, fM>` point for a platform,
/// plus lookups from indices to physical values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSpace {
    /// CPU frequencies in GHz, ascending; shared by both clusters on the TX2.
    pub cpu_freqs_ghz: Vec<f64>,
    /// Memory frequencies in GHz, ascending.
    pub mem_freqs_ghz: Vec<f64>,
    /// Valid core counts per core type (powers of two up to cluster size).
    pub nc_options: [Vec<usize>; 2],
}

impl ConfigSpace {
    /// Derive the configuration space from a platform description.
    pub fn from_spec(spec: &PlatformSpec) -> Self {
        let nc_options = [
            nc_options_for(spec.cluster(CoreType::Big).n_cores),
            nc_options_for(spec.cluster(CoreType::Little).n_cores),
        ];
        ConfigSpace {
            cpu_freqs_ghz: spec.cpu_freqs_ghz.clone(),
            mem_freqs_ghz: spec.mem_freqs_ghz.clone(),
            nc_options,
        }
    }

    /// Physical CPU frequency for an index.
    pub fn fc_ghz(&self, fc: FreqIndex) -> f64 {
        self.cpu_freqs_ghz[fc.0]
    }

    /// Physical memory frequency for an index.
    pub fn fm_ghz(&self, fm: FreqIndex) -> f64 {
        self.mem_freqs_ghz[fm.0]
    }

    /// Core count for a `(TC, NC-index)` pair.
    pub fn nc_count(&self, tc: CoreType, nc: NcIndex) -> usize {
        self.nc_options[tc.index()][nc.0]
    }

    /// Number of NC choices for a core type.
    pub fn n_nc(&self, tc: CoreType) -> usize {
        self.nc_options[tc.index()].len()
    }

    /// Highest CPU frequency index.
    pub fn fc_max(&self) -> FreqIndex {
        FreqIndex(self.cpu_freqs_ghz.len() - 1)
    }

    /// Highest memory frequency index.
    pub fn fm_max(&self) -> FreqIndex {
        FreqIndex(self.mem_freqs_ghz.len() - 1)
    }

    /// Iterate over every valid configuration, in a deterministic order.
    pub fn iter_all(&self) -> impl Iterator<Item = KnobConfig> + '_ {
        CoreType::ALL.into_iter().flat_map(move |tc| {
            (0..self.n_nc(tc)).flat_map(move |nc| {
                (0..self.cpu_freqs_ghz.len()).flat_map(move |fc| {
                    (0..self.mem_freqs_ghz.len()).map(move |fm| {
                        KnobConfig::new(tc, NcIndex(nc), FreqIndex(fc), FreqIndex(fm))
                    })
                })
            })
        })
    }

    /// Iterate over all `<TC, NC>` pairs.
    pub fn iter_tc_nc(&self) -> impl Iterator<Item = (CoreType, NcIndex)> + '_ {
        CoreType::ALL
            .into_iter()
            .flat_map(move |tc| (0..self.n_nc(tc)).map(move |nc| (tc, NcIndex(nc))))
    }

    /// Total number of configurations.
    pub fn len(&self) -> usize {
        let per_freq = self.cpu_freqs_ghz.len() * self.mem_freqs_ghz.len();
        (self.n_nc(CoreType::Big) + self.n_nc(CoreType::Little)) * per_freq
    }

    /// True when the space is empty (degenerate platform).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The four `<fC, fM>` corners (combinations of lowest/highest CPU and
    /// memory frequency) used by the steepest-descent pruning step.
    pub fn freq_corners(&self) -> [(FreqIndex, FreqIndex); 4] {
        let fc_lo = FreqIndex(0);
        let fc_hi = self.fc_max();
        let fm_lo = FreqIndex(0);
        let fm_hi = self.fm_max();
        [
            (fc_lo, fm_lo),
            (fc_lo, fm_hi),
            (fc_hi, fm_lo),
            (fc_hi, fm_hi),
        ]
    }

    /// Immediate `<fC, fM>` grid neighbours of a configuration (4-connected),
    /// used by the steepest-descent inner loop.
    pub fn freq_neighbours(&self, cfg: KnobConfig) -> Vec<KnobConfig> {
        let (buf, n) = self.freq_neighbours_array(cfg);
        buf[..n].to_vec()
    }

    /// Allocation-free [`Self::freq_neighbours`]: the (up to four) valid
    /// neighbours in `buf[..n]`, in the same order (`fC-1`, `fC+1`, `fM-1`,
    /// `fM+1`). The search inner loop calls this per descent step, so it
    /// must not touch the heap.
    pub fn freq_neighbours_array(&self, cfg: KnobConfig) -> ([KnobConfig; 4], usize) {
        let mut buf = [cfg; 4];
        let mut n = 0;
        if cfg.fc.0 > 0 {
            buf[n] = KnobConfig {
                fc: FreqIndex(cfg.fc.0 - 1),
                ..cfg
            };
            n += 1;
        }
        if cfg.fc.0 + 1 < self.cpu_freqs_ghz.len() {
            buf[n] = KnobConfig {
                fc: FreqIndex(cfg.fc.0 + 1),
                ..cfg
            };
            n += 1;
        }
        if cfg.fm.0 > 0 {
            buf[n] = KnobConfig {
                fm: FreqIndex(cfg.fm.0 - 1),
                ..cfg
            };
            n += 1;
        }
        if cfg.fm.0 + 1 < self.mem_freqs_ghz.len() {
            buf[n] = KnobConfig {
                fm: FreqIndex(cfg.fm.0 + 1),
                ..cfg
            };
            n += 1;
        }
        (buf, n)
    }

    /// Human-readable `<TC, NC, fC, fM>` label matching the paper's figures,
    /// e.g. `<Denver, 2, 1.11, 1.87>`.
    pub fn label(&self, cfg: KnobConfig) -> String {
        format!(
            "<{}, {}, {:.2}, {:.2}>",
            cfg.tc.paper_name(),
            self.nc_count(cfg.tc, cfg.nc),
            self.fc_ghz(cfg.fc),
            self.fm_ghz(cfg.fm)
        )
    }
}

/// Valid moldable core counts: powers of two up to the cluster size
/// (the paper's moldable execution uses 1, 2, ... cores of one type).
fn nc_options_for(n_cores: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut n = 1;
    while n <= n_cores {
        v.push(n);
        n *= 2;
    }
    if *v.last().unwrap() != n_cores && !v.contains(&n_cores) {
        v.push(n_cores);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PlatformSpec;

    fn space() -> ConfigSpace {
        ConfigSpace::from_spec(&PlatformSpec::tx2_like())
    }

    #[test]
    fn tx2_space_dimensions() {
        let s = space();
        assert_eq!(s.cpu_freqs_ghz.len(), 5);
        assert_eq!(s.mem_freqs_ghz.len(), 3);
        assert_eq!(s.nc_options[CoreType::Big.index()], vec![1, 2]);
        assert_eq!(s.nc_options[CoreType::Little.index()], vec![1, 2, 4]);
        // (2 + 3) tc/nc pairs x 5 fc x 3 fm
        assert_eq!(s.len(), 75);
        assert_eq!(s.iter_all().count(), s.len());
    }

    #[test]
    fn nc_options_cover_odd_sizes() {
        assert_eq!(nc_options_for(1), vec![1]);
        assert_eq!(nc_options_for(3), vec![1, 2, 3]);
        assert_eq!(nc_options_for(6), vec![1, 2, 4, 6]);
        assert_eq!(nc_options_for(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn corners_are_extremes() {
        let s = space();
        let corners = s.freq_corners();
        assert_eq!(corners[0], (FreqIndex(0), FreqIndex(0)));
        assert_eq!(corners[3], (s.fc_max(), s.fm_max()));
    }

    #[test]
    fn neighbours_stay_in_grid() {
        let s = space();
        for cfg in s.iter_all() {
            for n in s.freq_neighbours(cfg) {
                assert!(n.fc.0 < s.cpu_freqs_ghz.len());
                assert!(n.fm.0 < s.mem_freqs_ghz.len());
                assert_eq!(n.tc, cfg.tc);
                assert_eq!(n.nc, cfg.nc);
                // Exactly one coordinate moved by one step.
                let d = (n.fc.0 as i64 - cfg.fc.0 as i64).abs()
                    + (n.fm.0 as i64 - cfg.fm.0 as i64).abs();
                assert_eq!(d, 1);
            }
        }
    }

    #[test]
    fn label_matches_paper_format() {
        let s = space();
        let cfg = KnobConfig::new(CoreType::Big, NcIndex(1), FreqIndex(2), FreqIndex(2));
        assert_eq!(s.label(cfg), "<Denver, 2, 1.11, 1.87>");
    }

    #[test]
    fn iter_tc_nc_counts() {
        let s = space();
        assert_eq!(s.iter_tc_nc().count(), 5);
    }
}
