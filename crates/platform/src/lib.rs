//! # joss-platform — simulated asymmetric multicore platform ("SimTX2")
//!
//! The JOSS paper evaluates on an NVIDIA Jetson TX2: an asymmetric CPU with a
//! dual-core high-performance ("Denver") cluster and a quad-core
//! lower-performance ("A57") cluster, cluster-wide CPU DVFS, memory (EMC/DRAM)
//! DVFS, and an INA3221 power sensor sampled every 5 ms.
//!
//! This crate is the hardware substitute: a deterministic, analytic model of
//! such a platform that exposes exactly the knobs the paper's runtime tunes:
//!
//! * **TC** — core type (cluster) a task runs on,
//! * **NC** — number of cores used by a moldable task,
//! * **fC** — per-cluster CPU frequency (all cores of a cluster share it),
//! * **fM** — memory frequency.
//!
//! The ground-truth machine model ([`machine`]) maps a task's computational
//! shape (operation count, DRAM traffic, scalability) and a knob configuration
//! to an execution time and CPU/memory power draw, with deterministic
//! measurement noise ([`noise`]) so that regression models trained against it
//! exhibit realistic (non-perfect) accuracy, mirroring the paper's reported
//! 97% / 90% / 80% model accuracies.
//!
//! Virtual time ([`time`]), DVFS controllers ([`dvfs`]), power rails and the
//! sampling sensor ([`power`]) complete the substrate that the `joss-core`
//! runtime schedules against.

pub mod config;
pub mod dvfs;
pub mod energy;
pub mod machine;
pub mod noise;
pub mod power;
pub mod tables;
pub mod time;
pub mod topology;

pub use config::{ConfigSpace, CoreType, FreqIndex, KnobConfig, NcIndex};
pub use dvfs::{DvfsController, DvfsDomain, DvfsRequest};
pub use energy::EnergyAccount;
pub use machine::{ExecContext, ExecSample, MachineModel, MachineParams, TaskShape};
pub use noise::NoiseModel;
pub use power::{PowerSensor, PowerTrace, RailSample};
pub use tables::PowerTables;
pub use time::{Duration, SimTime};
pub use topology::{ClusterSpec, PlatformSpec};

/// Crate version, re-exported for reports.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
