//! Virtual time for the discrete-event platform.
//!
//! All platform and runtime events are ordered by a monotonically increasing
//! virtual clock. Time is stored as integer nanoseconds so that event ordering
//! is exact and runs are bit-for-bit reproducible; helper conversions to `f64`
//! seconds exist for model math and reporting.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Duration(pub u64);

impl SimTime {
    /// Simulation origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Build from seconds, saturating at the representable range.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative SimTime {secs}");
        SimTime((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Convert to floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed span since `earlier`. Panics (in debug) if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(
            self >= earlier,
            "time went backwards: {self:?} < {earlier:?}"
        );
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Build from seconds (non-negative).
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative Duration {secs}");
        Duration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Build from microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Build from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Convert to floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True if this span is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative factor (used for partial-interval energy).
    pub fn mul_f64(self, k: f64) -> Duration {
        debug_assert!(k >= 0.0);
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_secs() {
        let t = SimTime::from_secs_f64(1.25);
        assert_eq!(t.0, 1_250_000_000);
        assert!((t.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t0 = SimTime::from_secs_f64(1.0);
        let d = Duration::from_millis(500);
        let t1 = t0 + d;
        assert_eq!(t1.since(t0), d);
        assert_eq!(t1 - t0, d);
        assert_eq!((d + d).as_secs_f64(), 1.0);
    }

    #[test]
    fn duration_helpers() {
        assert_eq!(Duration::from_micros(5).0, 5_000);
        assert_eq!(Duration::from_millis(5).0, 5_000_000);
        assert!(Duration::ZERO.is_zero());
        assert_eq!(Duration(10).saturating_sub(Duration(20)), Duration::ZERO);
        assert_eq!(Duration(1000).mul_f64(0.5), Duration(500));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime(1);
        let b = SimTime(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
