//! Precomputed per-configuration rail-power tables.
//!
//! Idle (background) rail power is a pure function of the domain's frequency
//! index — `cluster_idle_w` of the CPU frequency, `mem_idle_w` of the memory
//! frequency — so it can be measured once per machine and reused everywhere
//! a frequency index is in hand. Two hot paths share these tables:
//!
//! * the engine's event loop, where the dirty-flag rail-power recompute
//!   becomes three table lookups instead of three `powi`-laden model calls;
//! * `joss_models::search`, where every objective evaluation charges the
//!   idle floor of a candidate configuration.
//!
//! The values are produced by the *exact same* [`MachineModel`] calls the
//! direct computation would make, so replacing a call with a lookup is
//! bit-exact — the engine's golden-fixture equivalence tests rely on that.

use crate::config::{ConfigSpace, CoreType, FreqIndex};
use crate::machine::MachineModel;
use serde::{Deserialize, Serialize};

/// Idle rail power per frequency index, measured once per machine (the
/// paper's §4.3.3 idle characterization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerTables {
    /// `[core_type][fc]` idle power of the whole cluster, watts.
    pub cpu_idle_w: [Vec<f64>; 2],
    /// `[fm]` memory background power, watts.
    pub mem_idle_w: Vec<f64>,
}

impl PowerTables {
    /// Measure from a machine (idle power is stable; measured once).
    pub fn measure(machine: &MachineModel, space: &ConfigSpace) -> Self {
        let cpu_idle_w = [
            space
                .cpu_freqs_ghz
                .iter()
                .map(|&f| machine.cluster_idle_w(CoreType::Big, f))
                .collect(),
            space
                .cpu_freqs_ghz
                .iter()
                .map(|&f| machine.cluster_idle_w(CoreType::Little, f))
                .collect(),
        ];
        let mem_idle_w = space
            .mem_freqs_ghz
            .iter()
            .map(|&f| machine.mem_idle_w(f))
            .collect();
        PowerTables {
            cpu_idle_w,
            mem_idle_w,
        }
    }

    /// Idle power of cluster `tc` at CPU frequency index `fc`, watts.
    #[inline]
    pub fn cluster_idle_w(&self, tc: CoreType, fc: FreqIndex) -> f64 {
        self.cpu_idle_w[tc.index()][fc.0]
    }

    /// Memory background power at memory frequency index `fm`, watts.
    #[inline]
    pub fn mem_idle_w(&self, fm: FreqIndex) -> f64 {
        self.mem_idle_w[fm.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::PlatformSpec;

    #[test]
    fn tables_match_direct_model_calls_bitwise() {
        let machine = MachineModel::tx2(7);
        let space = ConfigSpace::from_spec(&machine.spec);
        let tables = PowerTables::measure(&machine, &space);
        for tc in CoreType::ALL {
            for (i, &f) in space.cpu_freqs_ghz.iter().enumerate() {
                assert_eq!(
                    tables.cluster_idle_w(tc, FreqIndex(i)).to_bits(),
                    machine.cluster_idle_w(tc, f).to_bits(),
                    "cluster idle lookup must be bit-exact"
                );
            }
        }
        for (i, &f) in space.mem_freqs_ghz.iter().enumerate() {
            assert_eq!(
                tables.mem_idle_w(FreqIndex(i)).to_bits(),
                machine.mem_idle_w(f).to_bits(),
                "memory idle lookup must be bit-exact"
            );
        }
    }

    #[test]
    fn idle_power_increases_with_frequency() {
        let machine = MachineModel::tx2_noiseless();
        let space = ConfigSpace::from_spec(&PlatformSpec::tx2_like());
        let tables = PowerTables::measure(&machine, &space);
        for tc in CoreType::ALL {
            let lo = tables.cluster_idle_w(tc, FreqIndex(0));
            let hi = tables.cluster_idle_w(tc, FreqIndex(space.cpu_freqs_ghz.len() - 1));
            assert!(hi > lo && lo > 0.0);
        }
        assert!(tables.mem_idle_w(FreqIndex(2)) > tables.mem_idle_w(FreqIndex(0)));
    }
}
