//! Power rails, traces, and the sampling sensor.
//!
//! The platform exposes three measurable power rails, matching the TX2's
//! INA3221 channels used by the paper: the CPU rail (both clusters) and the
//! memory rail. Internally we keep the two clusters separate and report
//! CPU = big + little.
//!
//! Two measurement paths exist:
//!
//! * [`PowerTrace`] records the piecewise-constant rail powers emitted by the
//!   simulation engine and integrates energy *exactly*;
//! * [`PowerSensor`] emulates the paper's methodology — sampling instantaneous
//!   power every 5 ms and accumulating `P * dt` — and therefore carries
//!   sampling error. Tests bound the difference between the two.

use crate::time::{Duration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies one power rail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Rail {
    /// Big-cluster CPU power.
    CpuBig,
    /// Little-cluster CPU power.
    CpuLittle,
    /// Memory subsystem power.
    Mem,
}

impl Rail {
    /// All rails in storage order.
    pub const ALL: [Rail; 3] = [Rail::CpuBig, Rail::CpuLittle, Rail::Mem];

    /// Dense index for array storage.
    pub fn index(self) -> usize {
        match self {
            Rail::CpuBig => 0,
            Rail::CpuLittle => 1,
            Rail::Mem => 2,
        }
    }
}

/// Instantaneous power on all rails, watts.
pub type RailPowers = [f64; 3];

/// One sensor reading.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RailSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Rail powers at that instant.
    pub watts: RailPowers,
}

/// Piecewise-constant power trace with exact energy integration.
///
/// The engine calls [`PowerTrace::set`] whenever rail powers change (task
/// start/finish, DVFS transitions); energy is integrated in closed form.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerTrace {
    now: SimTime,
    current: RailPowers,
    /// Accumulated energy per rail, joules.
    energy_j: [f64; 3],
    /// Optional full history of change points (kept only when recording).
    history: Option<Vec<RailSample>>,
}

impl PowerTrace {
    /// New trace starting at time zero with all rails at zero watts.
    pub fn new(record_history: bool) -> Self {
        PowerTrace {
            now: SimTime::ZERO,
            current: [0.0; 3],
            energy_j: [0.0; 3],
            history: record_history.then(Vec::new),
        }
    }

    /// Current rail powers.
    pub fn current(&self) -> RailPowers {
        self.current
    }

    /// Advance to `at` (integrating the held powers) and set new rail powers.
    ///
    /// `at` must not be earlier than the previous change point.
    ///
    /// Zero-elapsed-time calls are bit-exact no-ops for the energy
    /// accumulators (powers are non-negative, so `e += held * 0.0` adds
    /// `+0.0` and cannot flip a sign bit or raise a NaN), which lets the two
    /// fast paths below skip the per-rail loops the engine would otherwise
    /// pay at every event.
    pub fn set(&mut self, at: SimTime, watts: RailPowers) {
        debug_assert!(at >= self.now, "power trace time went backwards");
        debug_assert!(watts.iter().all(|&w| w >= 0.0), "negative rail power");
        if at == self.now {
            // No time elapsed: nothing integrates. Replace the held level
            // and (when recording) still log the change point.
            if watts != self.current || self.history.is_some() {
                self.current = watts;
                if let Some(h) = &mut self.history {
                    h.push(RailSample { at, watts });
                }
            }
            return;
        }
        let dt = at.since(self.now).as_secs_f64();
        for ((e, &w), &held) in self.energy_j.iter_mut().zip(&watts).zip(&self.current) {
            debug_assert!(w >= 0.0, "negative rail power");
            *e += held * dt;
        }
        self.now = at;
        self.current = watts;
        if let Some(h) = &mut self.history {
            h.push(RailSample { at, watts });
        }
    }

    /// Integrate up to `at` without changing the held powers.
    pub fn advance(&mut self, at: SimTime) {
        debug_assert!(at >= self.now, "power trace time went backwards");
        if at == self.now {
            return; // zero elapsed time: bit-exact no-op (see `set`)
        }
        let cur = self.current;
        self.set(at, cur);
        if let Some(h) = &mut self.history {
            h.pop(); // advance is not a change point
        }
    }

    /// Exact accumulated energy on one rail, joules, up to the last
    /// `set`/`advance` point.
    pub fn energy_j(&self, rail: Rail) -> f64 {
        self.energy_j[rail.index()]
    }

    /// CPU energy (both clusters), joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.energy_j[0] + self.energy_j[1]
    }

    /// Memory energy, joules.
    pub fn mem_energy_j(&self) -> f64 {
        self.energy_j[2]
    }

    /// Total energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.energy_j.iter().sum()
    }

    /// Recorded change points (empty if recording was off).
    pub fn history(&self) -> &[RailSample] {
        self.history.as_deref().unwrap_or(&[])
    }

    /// Time of the last integration point.
    pub fn now(&self) -> SimTime {
        self.now
    }
}

/// INA3221-style sampling sensor: reads instantaneous rail power every
/// `period` and accumulates `P * period` into per-rail energy counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerSensor {
    period: Duration,
    next_sample: SimTime,
    energy_j: [f64; 3],
    n_samples: u64,
}

impl PowerSensor {
    /// New sensor sampling every `period` (first sample at `period`).
    pub fn new(period: Duration) -> Self {
        PowerSensor {
            period,
            next_sample: SimTime::ZERO + period,
            n_samples: 0,
            energy_j: [0.0; 3],
        }
    }

    /// The paper's 5 ms sensor.
    pub fn ina3221() -> Self {
        Self::new(Duration::from_millis(5))
    }

    /// Sampling period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Time of the next scheduled sample.
    pub fn next_sample_at(&self) -> SimTime {
        self.next_sample
    }

    /// Process all sample points up to and including `now`, reading the
    /// instantaneous powers from `read` (a function of sample time).
    pub fn advance_to(&mut self, now: SimTime, mut read: impl FnMut(SimTime) -> RailPowers) {
        while self.next_sample <= now {
            let watts = read(self.next_sample);
            let dt = self.period.as_secs_f64();
            for (e, &w) in self.energy_j.iter_mut().zip(&watts) {
                *e += w * dt;
            }
            self.n_samples += 1;
            self.next_sample += self.period;
        }
    }

    /// Sampled energy estimate on one rail, joules.
    pub fn energy_j(&self, rail: Rail) -> f64 {
        self.energy_j[rail.index()]
    }

    /// Sampled CPU (both clusters) energy, joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.energy_j[0] + self.energy_j[1]
    }

    /// Sampled memory energy, joules.
    pub fn mem_energy_j(&self) -> f64 {
        self.energy_j[2]
    }

    /// Number of samples taken so far.
    pub fn n_samples(&self) -> u64 {
        self.n_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_integration_of_constant_power() {
        let mut tr = PowerTrace::new(false);
        tr.set(SimTime::ZERO, [2.0, 1.0, 0.5]);
        tr.advance(SimTime::from_secs_f64(10.0));
        assert!((tr.energy_j(Rail::CpuBig) - 20.0).abs() < 1e-9);
        assert!((tr.cpu_energy_j() - 30.0).abs() < 1e-9);
        assert!((tr.mem_energy_j() - 5.0).abs() < 1e-9);
        assert!((tr.total_energy_j() - 35.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_integration() {
        let mut tr = PowerTrace::new(true);
        tr.set(SimTime::ZERO, [1.0, 0.0, 0.0]);
        tr.set(SimTime::from_secs_f64(2.0), [3.0, 0.0, 0.0]);
        tr.advance(SimTime::from_secs_f64(3.0));
        // 1W * 2s + 3W * 1s = 5 J
        assert!((tr.energy_j(Rail::CpuBig) - 5.0).abs() < 1e-9);
        assert_eq!(tr.history().len(), 2);
    }

    #[test]
    fn sensor_approximates_exact_energy() {
        // Power alternates between 1 W and 3 W every 7 ms; the 5 ms sampler
        // should land within a few percent of the exact 2 W average.
        let mut sensor = PowerSensor::ina3221();
        let total = SimTime::from_secs_f64(10.0);
        sensor.advance_to(total, |t| {
            let phase = (t.as_secs_f64() / 0.007) as u64 % 2;
            let w = if phase == 0 { 1.0 } else { 3.0 };
            [w, 0.0, 0.0]
        });
        let exact = 2.0 * 10.0;
        let err = (sensor.energy_j(Rail::CpuBig) - exact).abs() / exact;
        assert!(err < 0.05, "sampling error {err} too large");
        assert_eq!(sensor.n_samples(), 2000);
    }

    #[test]
    fn sensor_takes_no_sample_before_period() {
        let mut sensor = PowerSensor::new(Duration::from_millis(5));
        sensor.advance_to(SimTime::from_secs_f64(0.004), |_| [1.0, 1.0, 1.0]);
        assert_eq!(sensor.n_samples(), 0);
        sensor.advance_to(SimTime::from_secs_f64(0.005), |_| [1.0, 1.0, 1.0]);
        assert_eq!(sensor.n_samples(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "power trace time went backwards")]
    fn trace_rejects_time_reversal() {
        let mut tr = PowerTrace::new(false);
        tr.set(SimTime::from_secs_f64(1.0), [0.0; 3]);
        tr.set(SimTime::from_secs_f64(0.5), [0.0; 3]);
    }
}
