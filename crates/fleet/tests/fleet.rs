//! Fleet-boundary tests: real sockets, in-process backends, injected
//! failures.
//!
//! The load-bearing assertion extends the serve layer's: for any shard
//! count, backend count, and mid-stream backend death the retries can
//! absorb, the fleet's merged JSONL is **byte-identical** to a
//! single-node `Campaign::run_streaming` → `JsonlSink` run of the whole
//! grid with the same training parameters.

use joss_fleet::{run_fleet, spawn_local_backends, FleetConfig, FleetError};
use joss_serve::ServeConfig;
use joss_sweep::{Campaign, ExperimentContext, GridDesc, JsonlSink, SchedulerKind};
use joss_workloads::Scale;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Offline reference context — same (seed, reps) the test backends use.
fn offline_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

fn grid() -> GridDesc {
    GridDesc {
        workloads: vec!["DP".into(), "MM_256_dop4".into(), "FB".into()],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42, 7],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    }
}

/// The offline JSONL bytes for a description, single-threaded.
fn offline_jsonl(desc: &GridDesc) -> Vec<u8> {
    let specs = desc.resolve().expect("resolvable grid").build();
    let mut sink = JsonlSink::new(Vec::new());
    Campaign::with_threads(1).run_streaming(offline_ctx(), specs, |record| {
        sink.write(&record).expect("in-memory write");
    });
    sink.into_inner().expect("flush")
}

fn backend_template() -> ServeConfig {
    ServeConfig {
        reps: 1,
        workers: 4,
        campaign_threads: 2,
        ..ServeConfig::default()
    }
}

fn fleet_config(backends: Vec<String>) -> FleetConfig {
    FleetConfig {
        expect_train_seed: Some(42),
        expect_reps: Some(1),
        ..FleetConfig::new(backends)
    }
}

#[test]
fn merged_output_is_byte_identical_across_shard_and_backend_counts() {
    let desc = grid();
    let reference = offline_jsonl(&desc);
    let handles = spawn_local_backends(3, &backend_template()).expect("spawn backends");
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    for (n_backends, shards) in [(1, 1), (2, 2), (2, 5), (3, 0), (3, 12)] {
        let config = FleetConfig {
            shards,
            ..fleet_config(addrs[..n_backends].to_vec())
        };
        let mut merged = Vec::new();
        let report = run_fleet(&config, &desc, &mut merged)
            .unwrap_or_else(|e| panic!("fleet run ({n_backends} backends, {shards} shards): {e}"));
        assert_eq!(
            merged, reference,
            "merged bytes diverged at {n_backends} backends / {shards} shards"
        );
        assert_eq!(report.records, desc.spec_count());
        assert_eq!(report.failovers, 0);
        assert!(report.dead_backends.is_empty());
        let completed: usize = report.completed_per_backend.iter().map(|(_, n)| n).sum();
        // Every plan range plus every stolen tail concludes as a task.
        assert_eq!(completed, report.shards + report.steals);
    }
    for h in handles {
        h.stop().expect("clean backend shutdown");
    }
}

#[test]
fn a_session_reuses_its_fleet_across_campaigns_byte_identically() {
    let desc = grid();
    let reference = offline_jsonl(&desc);
    let handles = spawn_local_backends(2, &backend_template()).expect("spawn backends");
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    let config = fleet_config(addrs);
    let session = joss_fleet::FleetSession::connect(&config).expect("session connect");
    // Repeated campaigns over one session: probe and dials were paid at
    // connect, worker connections persist in the pool between runs, and
    // every run must still merge to the reference bytes.
    for lap in 0..3 {
        let mut merged = Vec::new();
        let report = session
            .run(&desc, &mut merged)
            .unwrap_or_else(|e| panic!("session run {lap}: {e}"));
        assert_eq!(merged, reference, "session run {lap} diverged");
        assert_eq!(report.records, desc.spec_count());
        assert_eq!(report.failovers, 0);
    }
    // A different grid through the same session.
    let small = GridDesc {
        workloads: vec!["DP".into(), "FB".into()],
        seeds: vec![42],
        ..grid()
    };
    let mut merged = Vec::new();
    session
        .run(&small, &mut merged)
        .expect("session run, second grid");
    assert_eq!(merged, offline_jsonl(&small), "second grid diverged");

    for h in handles {
        h.stop().expect("clean backend shutdown");
    }
}

#[test]
fn an_idle_backend_steals_from_a_throttled_straggler_byte_identically() {
    // Grid big enough that the straggler always holds a multi-spec
    // undelivered tail while the fast backend drains the rest of the
    // queue and goes idle.
    let desc = GridDesc {
        seeds: vec![42, 7, 13, 99],
        ..grid()
    };
    let reference = offline_jsonl(&desc);
    let handles = spawn_local_backends(2, &backend_template()).expect("spawn backends");
    // 600 B/s: a multi-spec range takes whole seconds to trickle through
    // the proxy, while /healthz probes and /stats steal polls (a few
    // hundred bytes) still land inside their 2s read timeouts.
    let proxy =
        joss_fleet::ThrottleProxy::spawn(&handles[1].addr().to_string(), 600).expect("proxy spawn");
    let config = fleet_config(vec![
        handles[0].addr().to_string(),
        proxy.addr().to_string(),
    ]);

    let mut merged = Vec::new();
    let report = run_fleet(&config, &desc, &mut merged).expect("elastic fleet run");

    assert_eq!(merged, reference, "steals must not change a single byte");
    assert!(
        report.steals >= 1,
        "no steal despite a heavily throttled straggler: {report:?}"
    );
    assert!(
        report.stolen_specs >= 1,
        "steals without moved specs: {report:?}"
    );
    assert_eq!(
        report.failovers, 0,
        "throttling is not a failure: {report:?}"
    );
    assert!(report.dead_backends.is_empty(), "{report:?}");
    let completed: usize = report.completed_per_backend.iter().map(|(_, n)| n).sum();
    assert_eq!(completed, report.shards + report.steals);

    for h in handles {
        h.stop().expect("clean backend shutdown");
    }
}

#[test]
fn coordinator_refuses_backends_with_mismatched_training() {
    let a = spawn_local_backends(1, &backend_template()).expect("backend a");
    let b = spawn_local_backends(
        1,
        &ServeConfig {
            train_seed: 7, // trained differently: records would not merge
            ..backend_template()
        },
    )
    .expect("backend b");
    let config = FleetConfig {
        expect_train_seed: None,
        expect_reps: None,
        ..FleetConfig::new(vec![a[0].addr().to_string(), b[0].addr().to_string()])
    };
    let err = run_fleet(&config, &grid(), &mut Vec::new())
        .expect_err("mismatched training must be refused");
    match err {
        FleetError::Incompatible(msg) => {
            assert!(
                msg.contains("train_seed") && msg.contains("refusing"),
                "{msg}"
            );
        }
        other => panic!("expected Incompatible, got {other}"),
    }
    // The explicit expectation is also enforced.
    let config = fleet_config(vec![b[0].addr().to_string()]);
    assert!(matches!(
        run_fleet(&config, &grid(), &mut Vec::new()),
        Err(FleetError::Incompatible(_))
    ));
    for h in a.into_iter().chain(b) {
        h.stop().expect("clean backend shutdown");
    }
}

/// A sabotaging TCP proxy in front of a healthy backend: it forwards
/// whole exchanges until armed, then truncates the next streamed campaign
/// response mid-line and **drops dead** — every later connection is
/// refused. From the coordinator's side this is a backend that crashed
/// while streaming a shard.
struct FlakyProxy {
    addr: String,
    died: Arc<AtomicBool>,
    campaigns_started: Arc<AtomicUsize>,
}

impl FlakyProxy {
    /// Proxy for `upstream` that kills the connection after `cut_bytes`
    /// of the first campaign response body.
    fn spawn(upstream: String, cut_bytes: usize) -> FlakyProxy {
        let listener = TcpListener::bind("127.0.0.1:0").expect("proxy bind");
        let addr = listener.local_addr().expect("proxy addr").to_string();
        let died = Arc::new(AtomicBool::new(false));
        let campaigns_started = Arc::new(AtomicUsize::new(0));
        let flag = Arc::clone(&died);
        let counter = Arc::clone(&campaigns_started);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                let Ok(mut client) = conn else { break };
                if flag.load(Ordering::Acquire) {
                    // Dead: refuse by closing immediately.
                    continue;
                }
                // Read the request head+body (requests are small and
                // self-delimited by Content-Length; a crude full read
                // with a short timeout is enough for a test double).
                let mut request = Vec::new();
                let _ = client.set_read_timeout(Some(Duration::from_millis(300)));
                let mut chunk = [0u8; 4096];
                loop {
                    match client.read(&mut chunk) {
                        Ok(0) => break,
                        Ok(n) => {
                            request.extend_from_slice(&chunk[..n]);
                            if request_complete(&request) {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                let is_campaign = request.starts_with(b"POST /v1/campaign");
                let Ok(mut up) = TcpStream::connect(&upstream) else {
                    break;
                };
                if up.write_all(&request).is_err() {
                    continue;
                }
                if is_campaign {
                    counter.fetch_add(1, Ordering::AcqRel);
                    // Forward the streamed response up to the cut, then
                    // die mid-line.
                    let mut forwarded = 0usize;
                    loop {
                        match up.read(&mut chunk) {
                            Ok(0) => break,
                            Ok(n) => {
                                let allowed = n.min(cut_bytes.saturating_sub(forwarded));
                                if client.write_all(&chunk[..allowed]).is_err() {
                                    break;
                                }
                                forwarded += allowed;
                                if forwarded >= cut_bytes {
                                    flag.store(true, Ordering::Release);
                                    break; // sockets drop here: mid-stream death
                                }
                            }
                            Err(_) => break,
                        }
                    }
                } else {
                    // Health probes pass through untouched.
                    let mut response = Vec::new();
                    let _ = up.read_to_end(&mut response);
                    let _ = client.write_all(&response);
                }
            }
        });
        FlakyProxy {
            addr,
            died,
            campaigns_started,
        }
    }
}

/// A request is complete once its head has arrived and the body matches
/// Content-Length (0 when absent).
fn request_complete(raw: &[u8]) -> bool {
    let Some(head_end) = raw.windows(4).position(|w| w == b"\r\n\r\n") else {
        return false;
    };
    let head = String::from_utf8_lossy(&raw[..head_end]);
    let length: usize = head
        .lines()
        .find_map(|l| {
            l.to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .map(str::to_string)
        })
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    raw.len() >= head_end + 4 + length
}

#[test]
fn mid_stream_backend_death_fails_over_and_keeps_bytes_identical() {
    let desc = grid();
    let reference = offline_jsonl(&desc);
    let handles = spawn_local_backends(2, &backend_template()).expect("spawn backends");
    let survivor = handles[0].addr().to_string();
    // Cut after ~2.5 record lines of the first campaign response (past
    // the HTTP head), so the death lands mid-line, mid-shard.
    let proxy = FlakyProxy::spawn(handles[1].addr().to_string(), 700);

    let config = FleetConfig {
        shards: 4,
        // Stealing off: this test pins down the *failover* path, and its
        // per-backend completion assertions assume no tails move around.
        steal: false,
        ..fleet_config(vec![survivor.clone(), proxy.addr.clone()])
    };
    let mut merged = Vec::new();
    let report = run_fleet(&config, &desc, &mut merged).expect("fleet must absorb the death");

    assert_eq!(
        merged, reference,
        "merged bytes diverged after mid-stream backend death"
    );
    assert!(proxy.died.load(Ordering::Acquire), "the proxy never died");
    assert!(
        proxy.campaigns_started.load(Ordering::Acquire) >= 1,
        "the flaky backend never got a shard — the failure was not exercised"
    );
    assert!(report.failovers >= 1, "no failover recorded: {report:?}");
    assert_eq!(
        report.dead_backends,
        vec![proxy.addr.clone()],
        "the dead backend must be detected as dead"
    );
    // Exclusion: after death every shard (including the retried one) must
    // have completed on the survivor — the dead backend completed none.
    let proxy_completed = report
        .completed_per_backend
        .iter()
        .find(|(addr, _)| *addr == proxy.addr)
        .map(|(_, n)| *n)
        .expect("proxy in report");
    assert_eq!(proxy_completed, 0, "a dead backend cannot complete shards");
    let survivor_completed = report
        .completed_per_backend
        .iter()
        .find(|(addr, _)| *addr == survivor)
        .map(|(_, n)| *n)
        .expect("survivor in report");
    assert_eq!(survivor_completed, report.shards);

    for h in handles {
        h.stop().expect("clean backend shutdown");
    }
}

#[test]
fn a_dead_only_fleet_reports_exhaustion_not_a_hang() {
    // One backend that dies on its first campaign and a grid with one
    // shard: the retry has nowhere to go and must fail cleanly.
    let handles = spawn_local_backends(1, &backend_template()).expect("spawn backend");
    let proxy = FlakyProxy::spawn(handles[0].addr().to_string(), 300);
    let config = FleetConfig {
        shards: 1,
        ..fleet_config(vec![proxy.addr.clone()])
    };
    let err = run_fleet(&config, &grid(), &mut Vec::new())
        .expect_err("a fleet with no survivors cannot succeed");
    assert!(
        matches!(err, FleetError::Exhausted { .. }),
        "expected Exhausted, got {err}"
    );
    for h in handles {
        h.stop().expect("clean backend shutdown");
    }
}
