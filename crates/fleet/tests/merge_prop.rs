//! Property tests for the order-restoring merge under the elastic
//! coordinator's delivery shapes: overlapping re-issued ranges — a stolen
//! tail racing its victim, a failover replaying a prefix — must collapse
//! to exactly-once, in-order output for every interleaving.

use joss_fleet::OrderedMerger;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The base range [0, n) is delivered once, plus random overlapping
    /// sub-ranges re-delivering the same indices (determinism makes the
    /// bytes identical, so re-delivery is the only hazard). All streams
    /// are interleaved round-robin from a rotated starting order; the
    /// merged output must hold every line exactly once, in global order.
    #[test]
    fn overlapping_reissued_ranges_merge_exactly_once(
        n in 1usize..80,
        cuts in proptest::collection::vec(proptest::any::<u64>(), 0..6),
        rot in proptest::any::<u64>(),
    ) {
        // The guaranteed-coverage stream plus arbitrary re-issues.
        let mut ranges = vec![(0usize, n)];
        for c in &cuts {
            let a = (*c as usize) % n;
            let b = ((*c >> 32) as usize) % n;
            let (lo, hi) = if a <= b { (a, b + 1) } else { (b, a + 1) };
            ranges.push((lo, hi));
        }
        let rot = (rot as usize) % ranges.len();
        ranges.rotate_left(rot);

        let mut m = OrderedMerger::new(Vec::new(), 0, n);
        let mut cursors: Vec<usize> = ranges.iter().map(|r| r.0).collect();
        let mut progressed = true;
        while progressed {
            progressed = false;
            for (k, &(_, end)) in ranges.iter().enumerate() {
                if cursors[k] < end {
                    m.push(cursors[k], &format!("line-{:03}", cursors[k])).unwrap();
                    cursors[k] += 1;
                    progressed = true;
                }
            }
        }

        prop_assert!(m.is_complete(), "frontier stalled at {}", m.frontier());
        prop_assert!(m.max_buffered() <= n);
        let out = String::from_utf8(m.finish().unwrap()).unwrap();
        let expected: String = (0..n).map(|i| format!("line-{i:03}\n")).collect();
        prop_assert_eq!(out, expected);
    }
}
