//! Fleet-overhead measurement rig: where does a steady-state campaign
//! spend its non-delivery time? Times a lone probe, a lone dial, warm
//! one-shot `run_fleet` (probe + dial every run), and warm
//! `FleetSession::run` (setup amortized) across 1- and 2-backend
//! topologies and several plan granularities. This is the experiment
//! behind the healthy-pair design in `joss_bench_json --fleet-out`
//! (`docs/PERF.md`): run it when fleet dispatch overhead regresses and
//! the snapshot alone does not say which stage grew.

use std::time::{Duration, Instant};

use joss_fleet::{backend, run_fleet, spawn_local_backends_with, FleetConfig};
use joss_serve::client::Conn;
use joss_serve::ServeConfig;
use joss_sweep::{GridDesc, SchedulerKind};
use joss_workloads::Scale;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn main() {
    let template = ServeConfig {
        reps: 1,
        workers: 4,
        max_inflight: 2,
        campaign_threads: 1,
        ..ServeConfig::default()
    };
    let handles = spawn_local_backends_with(2, &template, true).expect("spawn");
    let addrs: Vec<String> = handles.iter().map(|h| h.addr().to_string()).collect();

    let base = GridDesc {
        workloads: vec![
            "DP".into(),
            "FB".into(),
            "MM_256_dop4".into(),
            "HT_Small".into(),
            "MC_4096_dop4".into(),
            "ST_512_dop4".into(),
        ],
        schedulers: vec![SchedulerKind::Grws, SchedulerKind::Joss],
        seeds: vec![42, 7, 13, 99],
        scale: Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let config = |backends: Vec<String>| {
        let mut c = FleetConfig::new(backends);
        c.shards = 16;
        c.steal = true;
        c
    };

    // Warm both backends' stores + raw memos on all 16 ranges.
    for addr in &addrs {
        let mut sink = Vec::new();
        run_fleet(&config(vec![addr.clone()]), &base, &mut sink).expect("prime");
    }
    let mut sink = Vec::new();
    run_fleet(&config(addrs.clone()), &base, &mut sink).expect("prime both");

    const N: usize = 60;
    let mut t_probe = Vec::new();
    let mut t_dial = Vec::new();
    let mut t_1b = Vec::new();
    let mut t_2b = Vec::new();
    for _ in 0..N {
        let t0 = Instant::now();
        backend::probe(&addrs[0], Duration::from_secs(2)).expect("probe");
        t_probe.push(t0.elapsed().as_secs_f64() * 1e3);

        let t0 = Instant::now();
        let c = Conn::connect(&addrs[0], Duration::from_secs(2)).expect("dial");
        t_dial.push(t0.elapsed().as_secs_f64() * 1e3);
        drop(c);

        let mut out = Vec::new();
        let t0 = Instant::now();
        run_fleet(&config(addrs[..1].to_vec()), &base, &mut out).expect("1b");
        t_1b.push(t0.elapsed().as_secs_f64() * 1e3);

        let mut out = Vec::new();
        let t0 = Instant::now();
        run_fleet(&config(addrs.clone()), &base, &mut out).expect("2b");
        t_2b.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    eprintln!("probe   median {:.3} ms", median(t_probe));
    eprintln!("dial    median {:.3} ms", median(t_dial));
    eprintln!("1b warm median {:.3} ms", median(t_1b));
    eprintln!("2b warm median {:.3} ms", median(t_2b));

    // Session form at several plan granularities: probe + dial paid
    // once, conns pooled across runs.
    for shards in [8usize, 12, 16, 24, 32] {
        let mk = |backends: Vec<String>| {
            let mut c = FleetConfig::new(backends);
            c.shards = shards;
            c.steal = true;
            c
        };
        let c1 = mk(addrs[..1].to_vec());
        let c2 = mk(addrs.clone());
        let s1 = joss_fleet::FleetSession::connect(&c1).expect("session 1b");
        let s2 = joss_fleet::FleetSession::connect(&c2).expect("session 2b");
        // Re-prime raw memos for this plan's request shapes.
        let mut out = Vec::new();
        s1.run(&base, &mut out).expect("prime s1");
        let mut out = Vec::new();
        s2.run(&base, &mut out).expect("prime s2");
        let mut t_s1 = Vec::new();
        let mut t_s2 = Vec::new();
        for _ in 0..N {
            let mut out = Vec::new();
            let t0 = Instant::now();
            s1.run(&base, &mut out).expect("s1 run");
            t_s1.push(t0.elapsed().as_secs_f64() * 1e3);

            let mut out = Vec::new();
            let t0 = Instant::now();
            s2.run(&base, &mut out).expect("s2 run");
            t_s2.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        eprintln!(
            "shards {shards:2}: 1b session median {:.3} ms | 2b session median {:.3} ms",
            median(t_s1),
            median(t_s2)
        );
    }
}
