//! Backend health probing and compatibility checking.
//!
//! The byte-identity invariant only holds across backends that trained
//! their model set identically (same seed, same reps) and speak the same
//! record schema — merging anything else would silently interleave
//! records from *different experiments*. `joss-serve` surfaces those
//! parameters in `/healthz`; [`probe`] reads them and
//! [`verify_compatible`] refuses a mixed fleet with a clear error
//! instead.

use joss_serve::client;
use joss_sweep::json::{self, Value};
use std::time::Duration;

/// What one backend's `/healthz` reported.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendInfo {
    /// The probed `host:port`.
    pub addr: String,
    /// Whether the shared context is already trained.
    pub trained: bool,
    /// Training seed of the backend's (lazily trained) context.
    pub train_seed: u64,
    /// Profiling repetitions of the one-time characterization.
    pub reps: u32,
    /// Record wire-schema tag ([`joss_sweep::RECORD_SCHEMA`]).
    pub schema: String,
    /// Backend build version (informational; not gated).
    pub version: String,
}

/// Probe one backend: wait for `/healthz` (up to `wait`), then parse its
/// identity fields. A daemon that answers but omits the fields (a
/// pre-fleet `joss-serve`) is an error: its records cannot be trusted to
/// merge.
pub fn probe(addr: &str, wait: Duration) -> Result<BackendInfo, String> {
    let response = client::wait_ready(addr, wait)
        .map_err(|e| format!("backend {addr} failed its health probe: {e}"))?;
    let text = String::from_utf8_lossy(&response.body).into_owned();
    parse_health(addr, &text)
}

fn parse_health(addr: &str, body: &str) -> Result<BackendInfo, String> {
    let parsed = json::parse(body)
        .map_err(|e| format!("backend {addr} sent unparseable health JSON: {e}"))?;
    let field = |key: &str| -> Result<&Value, String> {
        parsed.get(key).ok_or_else(|| {
            format!(
                "backend {addr} health response is missing {key:?} \
                 (is it running a pre-fleet joss-serve?)"
            )
        })
    };
    let as_u64 = |key: &str| -> Result<u64, String> {
        field(key)?
            .as_u64()
            .ok_or_else(|| format!("backend {addr} health field {key:?} is not an unsigned int"))
    };
    let as_str = |key: &str| -> Result<String, String> {
        field(key)?
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("backend {addr} health field {key:?} is not a string"))
    };
    Ok(BackendInfo {
        addr: addr.to_string(),
        trained: field("trained")?.as_bool().unwrap_or(false),
        train_seed: as_u64("train_seed")?,
        reps: u32::try_from(as_u64("reps")?)
            .map_err(|_| format!("backend {addr} reports an out-of-range reps"))?,
        schema: as_str("schema")?,
        version: as_str("version")?,
    })
}

/// Quick liveness re-check, used after a mid-stream failure to decide
/// between "that backend is dead" and "that exchange failed".
pub fn is_alive(addr: &str, timeout: Duration) -> bool {
    client::get(addr, "/healthz", timeout).is_ok_and(|r| r.status == 200)
}

/// Live progress of one campaign on one backend, read from `GET /stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignProgress {
    /// Specs the backend has emitted for this campaign so far.
    pub completed: u64,
    /// Specs the campaign will emit in total.
    pub total: u64,
    /// Backend-wide executor queue depth (jobs admitted, not yet started).
    pub queue_depth: u64,
}

/// Poll a backend for the progress of the campaign whose formatted spec
/// hash is `hash` (the `X-Joss-Spec-Hash` spelling). Prefers the
/// dedicated `GET /v1/progress` endpoint (which carries richer
/// per-campaign state) and falls back to scanning `GET /stats` — mixed
/// fleets with backends predating the progress plane keep working.
///
/// `Ok(Some(_))` — the campaign is actively executing there;
/// `Ok(None)` — the backend answered but is not currently executing that
/// campaign (finished, still queued, or served from cache);
/// `Err(_)` — the backend did not answer, or sent unparseable stats.
///
/// This is the coordinator's steal-side sanity check: before re-issuing
/// part of an in-flight range elsewhere, it confirms the victim backend
/// is reachable and sees how far the campaign actually got.
pub fn fetch_progress(
    addr: &str,
    hash: &str,
    timeout: Duration,
) -> Result<Option<CampaignProgress>, String> {
    if let Ok(response) = client::get(addr, "/v1/progress", timeout) {
        if response.status == 200 {
            let text = String::from_utf8_lossy(&response.body).into_owned();
            if let Ok(parsed) = json::parse(&text) {
                if parsed.get("active").and_then(Value::as_array).is_some() {
                    return Ok(scan_progress(&parsed, "active", hash));
                }
            }
        }
    }
    let response = client::get(addr, "/stats", timeout)
        .map_err(|e| format!("backend {addr} failed its stats probe: {e}"))?;
    if response.status != 200 {
        return Err(format!(
            "backend {addr} answered /stats with {}",
            response.status
        ));
    }
    let text = String::from_utf8_lossy(&response.body).into_owned();
    let parsed =
        json::parse(&text).map_err(|e| format!("backend {addr} sent unparseable stats: {e}"))?;
    if parsed
        .get("active_campaigns")
        .and_then(Value::as_array)
        .is_none()
    {
        // A pre-elastic backend: no progress feed. Treat as "not running".
        return Ok(None);
    }
    Ok(scan_progress(&parsed, "active_campaigns", hash))
}

/// Find `hash` in a progress document's campaign array (`active` in
/// `/v1/progress`, `active_campaigns` in `/stats` — same entry shape).
fn scan_progress(parsed: &Value, array_key: &str, hash: &str) -> Option<CampaignProgress> {
    let queue_depth = parsed
        .get("executor_queue_depth")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    for entry in parsed.get(array_key).and_then(Value::as_array)? {
        if entry.get("hash").and_then(Value::as_str) == Some(hash) {
            let completed = entry.get("completed").and_then(Value::as_u64).unwrap_or(0);
            let total = entry.get("total").and_then(Value::as_u64).unwrap_or(0);
            return Some(CampaignProgress {
                completed,
                total,
                queue_depth,
            });
        }
    }
    None
}

/// Refuse a fleet whose backends would produce unmergeable records:
/// every backend must agree on train seed, reps, and record schema (with
/// each other, and with the caller's expectation when given). Build
/// versions may differ — the schema tag is the compatibility contract —
/// but skew is *logged*, because a version spread is the first thing to
/// check when one backend misbehaves during a rolling upgrade.
pub fn verify_compatible(
    infos: &[BackendInfo],
    expect_train_seed: Option<u64>,
    expect_reps: Option<u32>,
) -> Result<(), String> {
    let Some(first) = infos.first() else {
        return Err("fleet has no backends".to_string());
    };
    let want_seed = expect_train_seed.unwrap_or(first.train_seed);
    let want_reps = expect_reps.unwrap_or(first.reps);
    if first.schema != joss_sweep::RECORD_SCHEMA {
        return Err(format!(
            "backend {} speaks record schema {:?}, this coordinator speaks {:?}",
            first.addr,
            first.schema,
            joss_sweep::RECORD_SCHEMA
        ));
    }
    for info in infos {
        if info.train_seed != want_seed || info.reps != want_reps || info.schema != first.schema {
            return Err(format!(
                "incompatible backend {}: train_seed={} reps={} schema={:?}, \
                 expected train_seed={} reps={} schema={:?} — records from mismatched \
                 training would not merge byte-identically, refusing",
                info.addr,
                info.train_seed,
                info.reps,
                info.schema,
                want_seed,
                want_reps,
                first.schema
            ));
        }
    }
    for info in infos {
        if info.version != first.version {
            eprintln!(
                "[joss_fleet] version skew: backend {} runs {} while {} runs {} \
                 (schemas match, proceeding)",
                info.addr, info.version, first.addr, first.version
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(addr: &str, seed: u64, reps: u32, schema: &str) -> BackendInfo {
        BackendInfo {
            addr: addr.into(),
            trained: false,
            train_seed: seed,
            reps,
            schema: schema.into(),
            version: "0.1.0".into(),
        }
    }

    #[test]
    fn parses_a_modern_health_response() {
        let body = format!(
            "{{\"status\":\"ok\",\"trained\":true,\"train_seed\":42,\"reps\":3,\
             \"schema\":\"{}\",\"version\":\"0.1.0\"}}",
            joss_sweep::RECORD_SCHEMA
        );
        let info = parse_health("x:1", &body).unwrap();
        assert!(info.trained);
        assert_eq!(info.train_seed, 42);
        assert_eq!(info.reps, 3);
        assert_eq!(info.schema, joss_sweep::RECORD_SCHEMA);
    }

    #[test]
    fn pre_fleet_daemons_are_rejected_with_a_hint() {
        let err = parse_health("x:1", "{\"status\":\"ok\",\"trained\":false}").unwrap_err();
        assert!(
            err.contains("train_seed") && err.contains("pre-fleet"),
            "{err}"
        );
    }

    #[test]
    fn compatibility_requires_matching_training_and_schema() {
        let s = joss_sweep::RECORD_SCHEMA;
        let ok = [info("a:1", 42, 3, s), info("b:1", 42, 3, s)];
        verify_compatible(&ok, None, None).unwrap();
        verify_compatible(&ok, Some(42), Some(3)).unwrap();

        let err = verify_compatible(&ok, Some(7), None).unwrap_err();
        assert!(err.contains("a:1") && err.contains("train_seed"), "{err}");

        let mixed = [info("a:1", 42, 3, s), info("b:1", 43, 3, s)];
        let err = verify_compatible(&mixed, None, None).unwrap_err();
        assert!(err.contains("b:1") && err.contains("refusing"), "{err}");

        let old = [info("a:1", 42, 3, "joss-run-record/v0")];
        let err = verify_compatible(&old, None, None).unwrap_err();
        assert!(err.contains("schema"), "{err}");

        assert!(verify_compatible(&[], None, None).is_err());
    }
}
