//! A rate-limiting TCP proxy: the fleet's straggler simulator.
//!
//! [`ThrottleProxy`] forwards every byte faithfully in both directions but
//! meters the **upstream → client** direction to a byte rate, turning a
//! healthy backend into a straggler without touching its simulation —
//! exactly the failure shape elastic rebalancing exists for (the backend
//! computes at full speed; its records just trickle out). Used by the
//! fleet steal tests, the `fleet/campaign_2_backends_straggler` bench, and
//! — via the `joss_throttle_proxy` binary — the CI slow-backend scenario.
//!
//! The proxy is protocol-agnostic (a dumb splice), so it also carries
//! `/healthz` probes and `/stats` polls; those are small and pay at most a
//! few chunk delays.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bytes copied per metering step. Small enough that a record line spans
/// multiple steps at test rates (delivery is visibly gradual), large
/// enough that syscall overhead stays irrelevant.
const CHUNK: usize = 1024;

/// A live throttling proxy; dropping the handle (or calling
/// [`ThrottleProxy::stop`]) shuts it down.
pub struct ThrottleProxy {
    addr: String,
    shutdown: Arc<AtomicBool>,
}

impl ThrottleProxy {
    /// Start a proxy on an ephemeral local port, forwarding to `upstream`
    /// and limiting upstream→client delivery to `bytes_per_sec`.
    pub fn spawn(upstream: &str, bytes_per_sec: u64) -> std::io::Result<ThrottleProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?.to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        let upstream = upstream.to_string();
        std::thread::spawn(move || accept_loop(listener, &upstream, bytes_per_sec, &flag));
        Ok(ThrottleProxy { addr, shutdown })
    }

    /// The proxy's listen address (dial this instead of the upstream).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting connections. In-flight splices run to their
    /// sockets' natural end.
    pub fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway dial.
        let _ = TcpStream::connect(&self.addr);
    }
}

impl Drop for ThrottleProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Accept until shutdown; each connection gets its own splice pair.
/// Public so the `joss_throttle_proxy` binary can run it on a fixed
/// listener forever.
pub fn accept_loop(
    listener: TcpListener,
    upstream: &str,
    bytes_per_sec: u64,
    shutdown: &AtomicBool,
) {
    for conn in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            return;
        }
        let Ok(client) = conn else { continue };
        let Ok(server) = TcpStream::connect(upstream) else {
            let _ = client.shutdown(Shutdown::Both);
            continue;
        };
        let _ = client.set_nodelay(true);
        let _ = server.set_nodelay(true);
        let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
            continue;
        };
        // Requests upstream run at full speed; responses are metered.
        std::thread::spawn(move || splice(client_r, server, None));
        std::thread::spawn(move || splice(server_r, client, Some(bytes_per_sec)));
    }
}

/// Copy `from` to `to` until EOF or error, sleeping `len/rate` per chunk
/// when a rate is set, then propagate the EOF with a write-side shutdown
/// (so `Connection: close` responses still terminate for the client).
fn splice(mut from: TcpStream, mut to: TcpStream, bytes_per_sec: Option<u64>) {
    let mut buf = [0u8; CHUNK];
    loop {
        let n = match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        if to.write_all(&buf[..n]).is_err() {
            break;
        }
        if let Some(rate) = bytes_per_sec {
            if rate > 0 {
                std::thread::sleep(Duration::from_secs_f64(n as f64 / rate as f64));
            }
        }
    }
    let _ = to.shutdown(Shutdown::Write);
    let _ = from.shutdown(Shutdown::Read);
}
