//! The k-way order-restoring merge: record lines arrive tagged with their
//! global spec index, possibly out of order across shards, and leave as
//! one in-order JSONL stream.
//!
//! Shards are contiguous index ranges, so "k-way merge in spec order"
//! reduces to a reorder buffer: lines at the write frontier go straight
//! through to the output; lines from shards that finished early wait in a
//! `BTreeMap` until the frontier reaches them. When shards progress
//! together the buffer stays near one shard's backlog; the worst case
//! (last shard finishes first) is bounded by the grid size, and
//! [`OrderedMerger::max_buffered`] reports the high-water mark so a
//! campaign can see how much reordering its plan actually caused.
//!
//! Duplicate or already-emitted indices are ignored rather than
//! re-written: after a mid-stream failover the retry re-streams its whole
//! shard and the coordinator skips the prefix it already forwarded, but
//! the merger stays safe against double delivery by construction —
//! determinism guarantees a duplicate line would carry identical bytes
//! anyway.

use std::collections::BTreeMap;
use std::io::{self, Write};

/// Order-restoring line sink for global spec indices `start..end`.
#[derive(Debug)]
pub struct OrderedMerger<W: Write> {
    out: W,
    next: usize,
    end: usize,
    pending: BTreeMap<usize, String>,
    max_buffered: usize,
}

impl<W: Write> OrderedMerger<W> {
    /// Merger expecting every index in `start..end` exactly once.
    pub fn new(out: W, start: usize, end: usize) -> Self {
        OrderedMerger {
            out,
            next: start,
            end,
            pending: BTreeMap::new(),
            max_buffered: 0,
        }
    }

    /// Offer one record line (without its newline) at a global index.
    /// In-order lines (and any buffered successors they release) are
    /// written immediately; ahead-of-order lines are buffered; duplicates
    /// and already-emitted indices are dropped.
    pub fn push(&mut self, index: usize, line: &str) -> io::Result<()> {
        if index < self.next || index >= self.end {
            return Ok(()); // replay of an already-merged (or bogus) index
        }
        if index == self.next {
            self.write_line(line)?;
            self.next += 1;
            while let Some(buffered) = self.pending.remove(&self.next) {
                self.write_line(&buffered)?;
                self.next += 1;
            }
        } else {
            self.pending
                .entry(index)
                .or_insert_with(|| line.to_string());
            self.max_buffered = self.max_buffered.max(self.pending.len());
        }
        Ok(())
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")
    }

    /// True once every index in `start..end` has been written out.
    pub fn is_complete(&self) -> bool {
        self.next >= self.end && self.pending.is_empty()
    }

    /// Next index the output stream is waiting for.
    pub fn frontier(&self) -> usize {
        self.next
    }

    /// Lines currently waiting for the frontier.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// High-water mark of the reorder buffer over the whole merge.
    pub fn max_buffered(&self) -> usize {
        self.max_buffered
    }

    /// Flush and hand back the underlying writer.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restores_order_across_interleaved_shards() {
        let mut m = OrderedMerger::new(Vec::new(), 0, 6);
        // Shard B (3..6) finishes while shard A (0..3) is mid-stream.
        for (i, line) in [(3, "d"), (0, "a"), (4, "e"), (1, "b"), (5, "f"), (2, "c")] {
            m.push(i, line).unwrap();
        }
        assert!(m.is_complete());
        assert!(m.max_buffered() >= 2);
        let out = m.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\nd\ne\nf\n");
    }

    #[test]
    fn duplicates_and_replays_are_ignored() {
        let mut m = OrderedMerger::new(Vec::new(), 2, 5);
        m.push(2, "a").unwrap();
        m.push(2, "a-again").unwrap(); // already emitted
        m.push(4, "c").unwrap();
        m.push(4, "c-dup").unwrap(); // duplicate in the buffer
        m.push(0, "below-range").unwrap();
        m.push(9, "above-range").unwrap();
        assert!(!m.is_complete());
        assert_eq!(m.frontier(), 3);
        m.push(3, "b").unwrap();
        assert!(m.is_complete());
        let out = m.finish().unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "a\nb\nc\n");
    }

    #[test]
    fn empty_range_is_born_complete() {
        let m = OrderedMerger::new(Vec::new(), 4, 4);
        assert!(m.is_complete());
        assert_eq!(m.buffered(), 0);
    }
}
