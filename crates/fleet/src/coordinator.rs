//! The fleet coordinator: micro-range plan → shared work queue →
//! per-backend fetch workers → ordered merge, with health-checked
//! failover and **work stealing** from stragglers.
//!
//! ```text
//!                ┌── worker(backend 0) ── POST range k ──► joss-serve #0
//!  GridDesc ──►  │                                             │ JSONL
//!  micro plan ──►│   shared range queue                        ▼
//!  (cost-        │   (retry requeues; an idle        (global index, line)
//!   balanced,    │    worker STEALS the undelivered            │
//!   ~4×backends) │    tail of a straggler's range)             ▼
//!                └── worker(backend N-1) ──────────► OrderedMerger ──► out
//! ```
//!
//! One fetch worker per backend, each running at most one range request
//! at a time (backends parallelize *inside* a campaign; the fleet
//! parallelizes across backends). Each worker holds **one persistent
//! keep-alive connection** to its backend and streams every range down
//! it; a connection the backend closed between ranges (idle reap,
//! restart) is redialed transparently — only a failure that cost record
//! lines counts as a range failure.
//!
//! **Elastic stealing** (on by default, [`FleetConfig::steal`]): the grid
//! is cut into micro-ranges — [`ShardPlan::MICRO_FACTOR`] per backend —
//! so the queue always has spare work, and when it runs dry an idle
//! worker picks the in-flight range with the most undelivered lines,
//! polls the victim backend's `/stats` (reachability + live
//! specs-completed progress — the informed-steal signal), atomically
//! shrinks the victim's **effective end** to the midpoint of its
//! undelivered tail, and re-issues the tail as a fresh queue task. The
//! victim's stream stops at the new effective end
//! ([`StreamOutcome::Stopped`]) and still counts as completed. Records
//! are deterministic and carry global spec indices, so any overlap
//! between a victim racing past its shrunk end and the thief's re-issued
//! tail is de-duplicated for free by the [`OrderedMerger`]; byte
//! identity with the single-node run holds for every steal schedule.
//!
//! Failure policy, in order:
//!
//! * **503 shed** — the backend is alive but saturated; honour
//!   `Retry-After` on the same backend, bounded by `max_shed_retries`.
//! * **4xx** — a description fault (unknown workload, out-of-range knob);
//!   retrying elsewhere cannot help, the run aborts with the body.
//! * **transport error / truncated stream** — the range (shrunk to its
//!   current effective end — stolen tails are already someone else's
//!   problem) is requeued for any *other* backend, resuming after the
//!   lines that already reached the merge (byte-determinism makes the
//!   retry's prefix identical, so skipping it is sound). The failed
//!   backend is re-probed: if its health check fails too it is marked
//!   dead, its worker exits, and the resharding is bounded — remaining
//!   ranges drain onto survivors, and the run aborts once a range has no
//!   untried live backend left or exceeds `max_attempts`.

use crate::backend::{self, BackendInfo};
use crate::merge::OrderedMerger;
use joss_serve::client::{Conn, StreamOutcome};
use joss_sweep::shard::{grid_costs, ShardPlan};
use joss_sweep::{GridDesc, SpecRange};
use joss_telemetry::catalog as tm;
use joss_telemetry::trace;
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// How long an in-flight range may run before an idle worker will steal
/// from it even when its production keeps pace with its delivery (the
/// compute-bound straggler shape). Far above a healthy micro-range's
/// lifetime, far below a straggler's.
const STEAL_PATIENCE: Duration = Duration::from_millis(500);

/// Minimum age of an attempt before the *inactive-campaign* poll answer
/// justifies a steal. A healthy range is often briefly "produced but not
/// yet fully forwarded" (its final lines are in flight, the worker thread
/// merely unscheduled); within this grace it always drains, and the
/// commit-time re-validation would only be racing scheduler noise.
const STEAL_GRACE: Duration = Duration::from_millis(25);

/// The idle worker's tick while another backend still holds an
/// in-flight range. Much shorter than the ordinary 50ms queue wait: a
/// candidate is often an age gate a few milliseconds from expiring, and
/// a coarse wait would sleep straight through the window where stealing
/// still saves wall-clock. Each tick only inspects the registry under
/// the lock — the expensive `/stats` poll happens once a candidate is
/// actually old enough ([`pick_victim`]).
const STEAL_RETRY: Duration = Duration::from_millis(10);

/// Fleet topology, steal policy, and retry policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend addresses (`host:port`), one fetch worker each.
    pub backends: Vec<String>,
    /// Ranges to cut the grid into; 0 = auto
    /// ([`ShardPlan::MICRO_FACTOR`] per backend when stealing — spare
    /// ranges are what idle workers drain before resorting to steals —
    /// two per backend under `steal: false`, the historical static plan).
    pub shards: usize,
    /// Steal the undelivered tail of a straggler's in-flight range when
    /// the queue runs dry (default true). `false` restores the static
    /// plan: every range finishes on the backend that claimed it.
    pub steal: bool,
    /// Smallest undelivered tail worth stealing, in specs (default 2).
    /// Below this, re-issuing costs more (an HTTP exchange, a likely
    /// duplicate simulation) than letting the victim finish.
    pub min_steal: usize,
    /// Per-exchange socket timeout.
    pub timeout: Duration,
    /// How long to wait for each backend's first health probe.
    pub ready_timeout: Duration,
    /// Most failed tries per range before the run aborts; 0 = one try
    /// per backend.
    pub max_attempts: usize,
    /// Most 503 sheds tolerated per range attempt (each waits out the
    /// backend's `Retry-After`).
    pub max_shed_retries: usize,
    /// Training seed every backend must report (None = follow the first
    /// backend).
    pub expect_train_seed: Option<u64>,
    /// Training reps every backend must report (None = follow the first
    /// backend).
    pub expect_reps: Option<u32>,
}

impl FleetConfig {
    /// Defaults for a given backend list.
    pub fn new(backends: Vec<String>) -> Self {
        FleetConfig {
            backends,
            shards: 0,
            steal: true,
            min_steal: 2,
            timeout: Duration::from_secs(120),
            ready_timeout: Duration::from_secs(30),
            max_attempts: 0,
            max_shed_retries: 30,
            expect_train_seed: None,
            expect_reps: None,
        }
    }

    fn effective_shards(&self, run_count: usize) -> usize {
        let per_backend = if self.steal {
            ShardPlan::MICRO_FACTOR
        } else {
            2
        };
        let auto = self.backends.len().max(1) * per_backend;
        (if self.shards == 0 { auto } else { self.shards }).clamp(1, run_count)
    }

    fn effective_max_attempts(&self) -> usize {
        if self.max_attempts == 0 {
            self.backends.len().max(1)
        } else {
            self.max_attempts
        }
    }

    fn effective_min_steal(&self) -> usize {
        self.min_steal.max(1)
    }
}

/// Why a fleet run could not produce the merged grid.
#[derive(Debug)]
pub enum FleetError {
    /// The coordinator was given no backends.
    NoBackends,
    /// A backend never answered its health probe, or answered garbage.
    Probe(String),
    /// Backends disagree on training parameters or record schema.
    Incompatible(String),
    /// The grid description itself is unusable (already sharded, unknown
    /// workloads, ...).
    Grid(String),
    /// A backend rejected the sub-grid with a client-fault status; the
    /// same description would fail everywhere.
    Rejected {
        /// Backend that answered.
        addr: String,
        /// Its HTTP status.
        status: u16,
        /// Its error body.
        body: String,
    },
    /// A range ran out of live, untried backends (or attempts).
    Exhausted {
        /// Plan index of the range.
        shard: usize,
        /// What the attempts saw.
        detail: String,
    },
    /// The merge output failed to write.
    Io(io::Error),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoBackends => write!(f, "fleet has no backends"),
            FleetError::Probe(msg) | FleetError::Incompatible(msg) | FleetError::Grid(msg) => {
                write!(f, "{msg}")
            }
            FleetError::Rejected { addr, status, body } => {
                write!(f, "backend {addr} rejected the grid with {status}: {body}")
            }
            FleetError::Exhausted { shard, detail } => {
                write!(f, "shard {shard} ran out of backends: {detail}")
            }
            FleetError::Io(e) => write!(f, "merge output failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// What a completed fleet run did.
#[derive(Debug)]
pub struct FleetReport {
    /// Ranges the plan cut the grid into (steals add tasks beyond this).
    pub shards: usize,
    /// Records merged (== the grid's spec count on success).
    pub records: usize,
    /// Range attempts that failed over to another backend.
    pub failovers: usize,
    /// 503 sheds absorbed (each waited out a `Retry-After`).
    pub sheds: usize,
    /// Steals committed: undelivered tails of in-flight ranges re-issued
    /// to idle backends.
    pub steals: usize,
    /// Specs moved by those steals.
    pub stolen_specs: usize,
    /// Tasks completed per backend, in [`FleetConfig::backends`] order
    /// (sums to `shards + steals` on a fully successful run).
    pub completed_per_backend: Vec<(String, usize)>,
    /// Backends whose post-failure health re-probe also failed.
    pub dead_backends: Vec<String>,
    /// High-water mark of the merge reorder buffer, in lines.
    pub max_buffered_lines: usize,
}

impl FleetReport {
    /// One-line human summary (the `joss_fleet` CLI footer).
    pub fn summary(&self) -> String {
        let per_backend: Vec<String> = self
            .completed_per_backend
            .iter()
            .map(|(addr, n)| format!("{addr}={n}"))
            .collect();
        format!(
            "{} records over {} shards | steals {} ({} specs) | failovers {} | sheds {} | \
             dead {:?} | tasks per backend: {} | merge buffer peak {} lines",
            self.records,
            self.shards,
            self.steals,
            self.stolen_specs,
            self.failovers,
            self.sheds,
            self.dead_backends,
            per_backend.join(" "),
            self.max_buffered_lines,
        )
    }
}

/// One range's place in the retry state machine.
struct ShardTask {
    /// Plan index of the range this task descends from (stable across
    /// retries and steals; used in errors/logs).
    shard: usize,
    /// Global spec range.
    range: SpecRange,
    /// Backends (by index) that already failed this task.
    excluded: Vec<usize>,
    /// Failed tries so far.
    attempts: usize,
    /// Lines of this range already delivered to the merge — a retry
    /// skips this many lines and splices the rest.
    lines_done: usize,
}

/// Shared mutable face of one in-flight range attempt: written by the
/// victim's stream callback (delivery progress), shrunk by thieves (the
/// effective end). Lock-free because the victim reads it per line.
struct TaskCtl {
    /// Lines forwarded to the merge by the current attempt (excludes the
    /// resume-skip prefix).
    forwarded: AtomicUsize,
    /// One past the last global index this attempt must deliver. Starts
    /// at the range's end; each committed steal moves it down, never
    /// below the delivery frontier at commit time.
    effective_end: AtomicUsize,
}

/// Registry entry for one in-flight range (what thieves inspect).
struct InFlight {
    shard: usize,
    range: SpecRange,
    /// Resume skip of the running attempt (`lines_done` at claim).
    skip: usize,
    /// Formatted spec hash of the running sub-request, for matching the
    /// victim backend's `/stats` `active_campaigns` feed.
    sub_hash: String,
    /// When this attempt was claimed (the compute-bound-straggler clock).
    claimed_at: Instant,
    ctl: Arc<TaskCtl>,
}

impl InFlight {
    /// Global index one past the last line the current attempt has
    /// pushed into the merge.
    fn delivery_frontier(&self) -> usize {
        self.range.start + self.skip + self.ctl.forwarded.load(Ordering::Relaxed)
    }

    /// Undelivered lines this attempt still owes, under the current
    /// effective end.
    fn undelivered(&self) -> usize {
        self.ctl
            .effective_end
            .load(Ordering::Relaxed)
            .saturating_sub(self.delivery_frontier())
    }
}

/// Queue + liveness state shared by the fetch workers.
struct Shared {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    pending: VecDeque<ShardTask>,
    /// Per-backend in-flight registry: `Some` while that backend's worker
    /// is running a range attempt. Entries are created at claim and
    /// removed at conclusion under this same lock, so a steal can never
    /// target an already-concluded attempt.
    in_flight: Vec<Option<InFlight>>,
    dead: Vec<bool>,
    fatal: Option<FleetError>,
    failovers: usize,
    sheds: usize,
    steals: usize,
    stolen_specs: usize,
    completed: Vec<usize>,
}

impl QueueState {
    fn in_flight_count(&self) -> usize {
        self.in_flight.iter().filter(|e| e.is_some()).count()
    }
}

impl Shared {
    fn with<R>(&self, f: impl FnOnce(&mut QueueState) -> R) -> R {
        let mut st = self.state.lock().expect("fleet queue lock");
        let r = f(&mut st);
        self.ready.notify_all();
        r
    }
}

/// Live backends that have not yet failed this task.
fn candidates(st: &QueueState, task: &ShardTask, n_backends: usize) -> usize {
    (0..n_backends)
        .filter(|b| !st.dead[*b] && !task.excluded.contains(b))
        .count()
}

/// Execute `desc` across the fleet, writing the merged JSONL (global spec
/// order, byte-identical to a single-node run) to `out`. `out` is written
/// incrementally; hand it a buffered writer. On error the stream may be
/// truncated — a failed fleet run is not a usable record file.
///
/// One-shot form: probes, verifies, runs, tears down. A dispatcher
/// running many campaigns against the same fleet should hold a
/// [`FleetSession`] instead and pay the setup once.
pub fn run_fleet(
    config: &FleetConfig,
    desc: &GridDesc,
    out: &mut impl Write,
) -> Result<FleetReport, FleetError> {
    FleetSession::connect(config)?.run(desc, out)
}

/// A connected fleet: probed, compatibility-verified, holding one pooled
/// keep-alive connection slot per backend. [`FleetSession::run`] executes
/// campaigns over the session; the setup — the concurrent probe round and
/// the worker dials — is paid once at [`FleetSession::connect`], not per
/// campaign, and worker connections persist across runs (a backend that
/// reaped an idle connection between campaigns costs one silent redial in
/// the worker, nothing more).
pub struct FleetSession<'a> {
    config: &'a FleetConfig,
    infos: Vec<BackendInfo>,
    conns: Mutex<Vec<Option<Conn>>>,
}

impl<'a> FleetSession<'a> {
    /// Probe every backend, verify the fleet could merge, and pre-dial
    /// one campaign connection per backend.
    pub fn connect(config: &'a FleetConfig) -> Result<Self, FleetError> {
        if config.backends.is_empty() {
            return Err(FleetError::NoBackends);
        }
        // Health + compatibility gate: refuse to dispatch anything to a
        // fleet whose records could not merge. Probes run concurrently —
        // a fleet's pre-dispatch latency is one probe round-trip, not one
        // per backend. Each probe thread also pre-dials its worker's
        // campaign connection: connection setup is one concurrent round
        // for any fleet size instead of a serial lazy dial on every
        // worker's first claim. A failed dial is not an error here — the
        // worker redials lazily and the failover path owns genuinely
        // unreachable backends.
        let dialed: Vec<(BackendInfo, Option<Conn>)> = std::thread::scope(|scope| {
            let probes: Vec<_> = config
                .backends
                .iter()
                .map(|addr| {
                    scope.spawn(move || {
                        let info = backend::probe(addr, config.ready_timeout)?;
                        let conn = Conn::connect(addr, config.timeout).ok();
                        Ok((info, conn))
                    })
                })
                .collect();
            probes
                .into_iter()
                .map(|h| h.join().expect("probe thread panicked"))
                .collect::<Result<_, _>>()
                .map_err(FleetError::Probe)
        })?;
        let (infos, conns): (Vec<BackendInfo>, Vec<Option<Conn>>) = dialed.into_iter().unzip();
        backend::verify_compatible(&infos, config.expect_train_seed, config.expect_reps)
            .map_err(FleetError::Incompatible)?;
        Ok(FleetSession {
            config,
            infos,
            conns: Mutex::new(conns),
        })
    }

    /// The probed `/healthz` snapshots, in `config.backends` order.
    pub fn backends(&self) -> &[BackendInfo] {
        &self.infos
    }

    /// Execute one campaign across the session's fleet (see [`run_fleet`]
    /// for the merge contract).
    pub fn run(&self, desc: &GridDesc, out: &mut impl Write) -> Result<FleetReport, FleetError> {
        let config = self.config;
        if desc.shard.is_some() {
            return Err(FleetError::Grid(
                "the fleet shards grids itself; submit an unsharded description".into(),
            ));
        }
        let run_count = desc.spec_count();
        if run_count == 0 {
            return Err(FleetError::Grid(
                "grid needs at least one workload and one scheduler".into(),
            ));
        }

        // Cost-balanced contiguous micro-plan (same cost model as
        // `joss_sweep --shard`, cut finer so the queue outlives stragglers).
        let costs = grid_costs(desc).map_err(FleetError::Grid)?;
        let plan = ShardPlan::weighted(&costs, config.effective_shards(run_count));

        let n_backends = config.backends.len();
        tm::FLEET_RUNS.inc();
        tm::FLEET_SHARDS_PLANNED.add(plan.len() as u64);
        // One trace id per fleet run: workers adopt it (their spans and
        // steal/requeue events share it) and send it to every backend as
        // `X-Joss-Trace`, so the backends' request spans stitch into the
        // same distributed trace.
        let fleet_tid = trace::new_trace_id();
        trace::set_current(fleet_tid);
        trace::event(
            "fleet_run",
            format!("shards={} backends={n_backends}", plan.len()),
        );
        let shared = Shared {
            state: Mutex::new(QueueState {
                pending: plan
                    .ranges()
                    .iter()
                    .enumerate()
                    .map(|(shard, &range)| ShardTask {
                        shard,
                        range,
                        excluded: Vec::new(),
                        attempts: 0,
                        lines_done: 0,
                    })
                    .collect(),
                in_flight: (0..n_backends).map(|_| None).collect(),
                dead: vec![false; n_backends],
                fatal: None,
                failovers: 0,
                sheds: 0,
                steals: 0,
                stolen_specs: 0,
                completed: vec![0; n_backends],
            }),
            ready: Condvar::new(),
        };

        // Workers borrow the session's pooled connections for the duration
        // of the run; whatever survives (keep-alive held, no transport
        // failure) goes back in the pool for the next campaign.
        let conns: Vec<Option<Conn>> = {
            let mut pool = self.conns.lock().expect("fleet conn pool lock");
            pool.iter_mut().map(|slot| slot.take()).collect()
        };
        let (tx, rx) = mpsc::channel::<(usize, String)>();
        let mut merger = OrderedMerger::new(out, 0, run_count);

        let returned: Vec<Option<Conn>> = std::thread::scope(|scope| {
            let workers: Vec<_> = config
                .backends
                .iter()
                .enumerate()
                .zip(conns)
                .map(|((b, addr), conn)| {
                    let tx = tx.clone();
                    let shared = &shared;
                    scope.spawn(move || {
                        trace::set_current(fleet_tid);
                        fetch_worker(b, addr, desc, config, shared, conn, tx)
                    })
                })
                .collect();
            drop(tx);
            // The merge runs on the coordinating thread: restore global order
            // and stream to the caller's writer as lines arrive.
            for (index, line) in rx {
                if let Err(e) = merger.push(index, &line) {
                    shared.with(|st| {
                        if st.fatal.is_none() {
                            st.fatal = Some(FleetError::Io(e));
                        }
                    });
                    break; // dropping rx unblocks nothing (sends just fail)
                }
            }
            workers
                .into_iter()
                .map(|h| h.join().expect("fetch worker panicked"))
                .collect()
        });
        {
            let mut pool = self.conns.lock().expect("fleet conn pool lock");
            for (slot, conn) in pool.iter_mut().zip(returned) {
                if slot.is_none() {
                    *slot = conn;
                }
            }
        }

        let (fatal, failovers, sheds, steals, stolen_specs, dead, completed) = {
            let mut st = shared.state.lock().expect("fleet queue lock");
            (
                st.fatal.take(),
                st.failovers,
                st.sheds,
                st.steals,
                st.stolen_specs,
                st.dead.clone(),
                st.completed.clone(),
            )
        };
        if let Some(error) = fatal {
            return Err(error);
        }
        if !merger.is_complete() {
            // Unreachable by construction (every range either completed or
            // flagged fatal) — but a truncated merge must never pass silently.
            return Err(FleetError::Exhausted {
                shard: usize::MAX,
                detail: format!(
                    "merge stalled at record {} of {run_count}",
                    merger.frontier()
                ),
            });
        }
        let max_buffered_lines = merger.max_buffered();
        merger.finish().map_err(FleetError::Io)?;
        Ok(FleetReport {
            shards: plan.len(),
            records: run_count,
            failovers,
            sheds,
            steals,
            stolen_specs,
            completed_per_backend: config.backends.iter().cloned().zip(completed).collect(),
            dead_backends: config
                .backends
                .iter()
                .zip(&dead)
                .filter(|(_, &d)| d)
                .map(|(a, _)| a.clone())
                .collect(),
            max_buffered_lines,
        })
    }
}

/// How one range attempt ended (worker-internal).
enum Attempt {
    Done,
    Failed(String),
    Fatal(FleetError),
}

/// A steal candidate snapshotted under the queue lock: enough to poll the
/// victim's backend without the lock and re-validate at commit.
struct StealPlan {
    victim: usize,
    sub_hash: String,
    skip: usize,
    claimed_at: Instant,
    ctl: Arc<TaskCtl>,
}

/// Pick the in-flight range (on any backend but `thief`) with the most
/// undelivered lines, if that tail is worth stealing. Ranges younger
/// than [`STEAL_GRACE`] are not candidates at all — no poll answer
/// could justify stealing one yet, and on a busy host the poll itself
/// taxes the very backend suspected of lagging.
fn pick_victim(st: &QueueState, thief: usize, config: &FleetConfig) -> Option<StealPlan> {
    st.in_flight
        .iter()
        .enumerate()
        .filter(|(v, _)| *v != thief)
        .filter_map(|(v, entry)| entry.as_ref().map(|f| (v, f)))
        .filter(|(_, f)| f.claimed_at.elapsed() >= STEAL_GRACE)
        .map(|(v, f)| (v, f, f.undelivered()))
        .filter(|(_, _, undelivered)| *undelivered >= config.effective_min_steal())
        .max_by_key(|(_, _, undelivered)| *undelivered)
        .map(|(victim, f, _)| StealPlan {
            victim,
            sub_hash: f.sub_hash.clone(),
            skip: f.skip,
            claimed_at: f.claimed_at,
            ctl: Arc::clone(&f.ctl),
        })
}

/// The informed-steal gate, fed by the victim backend's `/stats` poll.
/// A healthy range delivers as fast as it produces, so its production
/// lead stays near zero and stealing it would only duplicate simulation;
/// steal only from ranges that are **delivery-bound** (produced at least
/// `min_steal` specs beyond what reached the merge — a throttled or
/// congested pipe), **done producing but still undelivered** (no longer
/// in the active feed), or **simply old** (compute-bound straggler,
/// [`STEAL_PATIENCE`]).
fn steal_justified(
    poll: &Result<Option<backend::CampaignProgress>, String>,
    plan: &StealPlan,
    config: &FleetConfig,
) -> bool {
    match poll {
        // Unreachable victim: its own worker is about to see a transport
        // failure; stealing now would only double the mess.
        Err(_) => false,
        // Answered, but the range is not actively executing there:
        // production finished (or was cache-served) and the bytes are
        // still in flight — delivery-bound, once past the grace period
        // that separates a throttled pipe from mere scheduler lag.
        Ok(None) => plan.claimed_at.elapsed() >= STEAL_GRACE,
        Ok(Some(progress)) => {
            let delivered = plan.skip + plan.ctl.forwarded.load(Ordering::Relaxed);
            let lead = (progress.completed as usize).saturating_sub(delivered);
            lead >= config.effective_min_steal() || plan.claimed_at.elapsed() >= STEAL_PATIENCE
        }
    }
}

/// Commit a steal against a re-validated victim: halve the undelivered
/// tail, shrink the victim's effective end to the split, and queue the
/// tail as a fresh task (front of the queue — the thief claims it next).
/// Returns false when the moment passed (attempt concluded, another thief
/// got there first, or the tail shrank below `min_steal`).
fn try_commit_steal(st: &mut QueueState, plan: &StealPlan, config: &FleetConfig) -> bool {
    let Some(f) = st.in_flight[plan.victim].as_ref() else {
        return false;
    };
    // Same Arc ⇒ same attempt: the registry entry was neither concluded
    // nor replaced by a later claim while the lock was dropped.
    if !Arc::ptr_eq(&f.ctl, &plan.ctl) {
        return false;
    }
    let undelivered = f.undelivered();
    if undelivered < config.effective_min_steal() {
        return false;
    }
    let frontier = f.delivery_frontier();
    let eff_end = f.ctl.effective_end.load(Ordering::Relaxed);
    // The victim already proved it is behind: leave it only the quarter
    // of the undelivered tail nearest its frontier and move the rest.
    // `max(1)` keeps the split strictly above the frontier so the victim
    // always has something left to conclude with.
    let split = frontier + (undelivered / 4).max(1);
    if split >= eff_end {
        return false;
    }
    f.ctl.effective_end.store(split, Ordering::Relaxed);
    let stolen = SpecRange::new(split, eff_end);
    let shard = f.shard;
    st.steals += 1;
    st.stolen_specs += stolen.len();
    tm::FLEET_STEALS_COMMITTED.inc();
    tm::FLEET_STOLEN_SPECS.add(stolen.len() as u64);
    trace::event(
        "fleet_steal",
        format!(
            "victim={} shard={shard} range={}..{}",
            plan.victim, stolen.start, stolen.end
        ),
    );
    st.pending.push_front(ShardTask {
        shard,
        range: stolen,
        excluded: Vec::new(),
        attempts: 0,
        lines_done: 0,
    });
    true
}

/// The `X-Joss-Trace` value this worker thread should send with every
/// campaign request: the fleet run's trace id (adopted via
/// [`trace::set_current`] at worker spawn), or nothing when tracing is
/// off / no run-level id was minted.
fn trace_header() -> Option<String> {
    match trace::current() {
        0 => None,
        id => Some(trace::format_id(id)),
    }
}

/// One backend's fetch loop: claim ranges this backend has not failed,
/// stream them into the merge, requeue on failure — and when the queue
/// runs dry, steal the undelivered tail of the worst straggler.
fn fetch_worker(
    b: usize,
    addr: &str,
    desc: &GridDesc,
    config: &FleetConfig,
    shared: &Shared,
    // The worker's persistent connection: pre-dialed alongside the probe,
    // kept across ranges, dropped (and lazily redialed) after any
    // transport failure or steal-abort.
    mut conn: Option<Conn>,
    tx: mpsc::Sender<(usize, String)>,
) -> Option<Conn> {
    let n_backends = config.backends.len();
    if let Some(c) = conn.as_mut() {
        c.set_trace(trace_header());
    }
    loop {
        // Claim the next range not excluded for this backend; steal when
        // the queue is dry; exit when everything has drained / the run
        // went fatal / this backend was declared dead.
        let mut st = shared.state.lock().expect("fleet queue lock");
        // One steal attempt per wakeup: after a declined attempt the
        // exit/claim conditions must be re-checked (the fleet may have
        // drained while the poll ran unlocked — its notify is already
        // spent) before this worker commits to a timed wait.
        let mut may_steal = config.steal;
        let (task, ctl) = loop {
            if st.fatal.is_some() || st.dead[b] {
                return conn;
            }
            if st.pending.is_empty() && st.in_flight_count() == 0 {
                return conn;
            }
            if let Some(pos) = st.pending.iter().position(|t| !t.excluded.contains(&b)) {
                let task = st.pending.remove(pos).expect("position just found");
                let ctl = Arc::new(TaskCtl {
                    forwarded: AtomicUsize::new(0),
                    effective_end: AtomicUsize::new(task.range.end),
                });
                st.in_flight[b] = Some(InFlight {
                    shard: task.shard,
                    range: task.range,
                    skip: task.lines_done,
                    sub_hash: format!("{:016x}", desc.with_shard(task.range).spec_hash()),
                    claimed_at: Instant::now(),
                    ctl: Arc::clone(&ctl),
                });
                trace::event(
                    "fleet_dispatch",
                    format!(
                        "backend={b} shard={} range={}..{}",
                        task.shard, task.range.start, task.range.end
                    ),
                );
                break (task, ctl);
            }
            if may_steal {
                if let Some(plan) = pick_victim(&st, b, config) {
                    // Poll the victim backend's /stats without the lock,
                    // then gate on what it says (see [`steal_justified`]):
                    // only genuinely lagging ranges are worth re-issuing.
                    drop(st);
                    tm::FLEET_STEAL_ATTEMPTS.inc();
                    let poll = backend::fetch_progress(
                        &config.backends[plan.victim],
                        &plan.sub_hash,
                        Duration::from_secs(2),
                    );
                    // The steal decision's input, in the trace ring: what
                    // the victim reported (or that it didn't), next to the
                    // dispatch/commit events it explains.
                    trace::event(
                        "fleet_steal_poll",
                        match &poll {
                            Ok(Some(p)) => format!(
                                "victim={} hash={} completed={}/{} queue={}",
                                plan.victim, plan.sub_hash, p.completed, p.total, p.queue_depth
                            ),
                            Ok(None) => {
                                format!("victim={} hash={} not-running", plan.victim, plan.sub_hash)
                            }
                            Err(e) => {
                                format!("victim={} hash={} error={e}", plan.victim, plan.sub_hash)
                            }
                        },
                    );
                    st = shared.state.lock().expect("fleet queue lock");
                    if steal_justified(&poll, &plan, config) {
                        if try_commit_steal(&mut st, &plan, config) {
                            shared.ready.notify_all();
                            continue; // the stolen tail is at the queue front
                        }
                        // Justified by the poll, but the moment passed
                        // while the lock was dropped (attempt concluded,
                        // another thief won, tail shrank).
                        tm::FLEET_STEALS_INVALIDATED.inc();
                    }
                    // Steal declined (victim healthy, finished, raced, or
                    // unreachable): loop once more to re-check the exit
                    // and claim conditions before waiting — the fleet may
                    // have drained while the poll ran unlocked.
                    may_steal = false;
                    continue;
                }
            }
            // While another backend holds an in-flight range, tick on the
            // short steal cadence (checking the registry is just a lock;
            // the expensive /stats poll is age-gated in [`pick_victim`]).
            // Otherwise a lazy wait — completion notifies.
            let wait = if config.steal
                && st
                    .in_flight
                    .iter()
                    .enumerate()
                    .any(|(v, entry)| v != b && entry.is_some())
            {
                STEAL_RETRY
            } else {
                Duration::from_millis(50)
            };
            let (next, _) = shared
                .ready
                .wait_timeout(st, wait)
                .expect("fleet queue lock");
            st = next;
            may_steal = config.steal;
        };
        drop(st);

        let (outcome, forwarded) =
            run_shard(addr, desc, config, &task, &ctl, shared, &tx, &mut conn);
        match outcome {
            Attempt::Done => {
                tm::FLEET_TASKS_COMPLETED.inc();
                tm::FLEET_BACKEND_TASKS.add(addr, 1);
                shared.with(|st| {
                    st.in_flight[b] = None;
                    st.completed[b] += 1;
                });
                // A completed range is news a sleeping worker may be
                // waiting on: the fleet may have drained (exit now, not
                // a timeout tick later), or the cleared in-flight slot
                // changes what is worth stealing.
                shared.ready.notify_all();
            }
            Attempt::Fatal(error) => {
                shared.with(|st| {
                    st.in_flight[b] = None;
                    if st.fatal.is_none() {
                        st.fatal = Some(error);
                    }
                });
                shared.ready.notify_all();
                return conn;
            }
            Attempt::Failed(why) => {
                // Distinguish "that backend is gone" from "that exchange
                // failed": a dead backend is excluded from everything and
                // its worker exits; a live one only loses this range.
                let alive = backend::is_alive(addr, Duration::from_secs(2));
                let mut task = task;
                task.lines_done += forwarded;
                task.attempts += 1;
                task.excluded.push(b);
                // Tails stolen while this attempt ran are other tasks
                // now: the retry owes only up to the current effective
                // end.
                let eff_end = ctl.effective_end.load(Ordering::Relaxed);
                if eff_end < task.range.end {
                    task.range = SpecRange::new(task.range.start, eff_end);
                }
                let exit = shared.with(|st| {
                    st.in_flight[b] = None;
                    st.failovers += 1;
                    if !alive {
                        st.dead[b] = true;
                    }
                    let detail = format!(
                        "attempt {} on backend {addr} failed ({why}); \
                         {} of {} lines salvaged",
                        task.attempts,
                        task.lines_done,
                        task.range.len()
                    );
                    if task.lines_done >= task.range.len() {
                        // The failure struck after every line this task
                        // still owed (post-steal) was delivered: it is
                        // complete, not failed.
                        st.completed[b] += 1;
                        st.failovers -= 1;
                        tm::FLEET_TASKS_COMPLETED.inc();
                        tm::FLEET_BACKEND_TASKS.add(addr, 1);
                    } else if candidates(st, &task, n_backends) == 0
                        || task.attempts >= config.effective_max_attempts()
                    {
                        tm::FLEET_FAILOVERS.inc();
                        let shard = task.shard;
                        if st.fatal.is_none() {
                            st.fatal = Some(FleetError::Exhausted { shard, detail });
                        }
                    } else {
                        tm::FLEET_FAILOVERS.inc();
                        trace::event(
                            "fleet_requeue",
                            format!(
                                "backend={b} shard={} range={}..{} attempt={}",
                                task.shard, task.range.start, task.range.end, task.attempts
                            ),
                        );
                        st.pending.push_back(task);
                        // A newly dead backend may have stranded *other*
                        // queued ranges that already excluded every
                        // survivor.
                        if st.dead[b] {
                            if let Some(stranded) = st
                                .pending
                                .iter()
                                .find(|t| candidates(st, t, n_backends) == 0)
                            {
                                let shard = stranded.shard;
                                if st.fatal.is_none() {
                                    st.fatal = Some(FleetError::Exhausted {
                                        shard,
                                        detail: format!("no live backend left after {addr} died"),
                                    });
                                }
                            }
                        }
                    }
                    st.dead[b] || st.fatal.is_some()
                });
                // Requeued range / new fatal / newly dead backend: all
                // news worth waking sleepers for.
                shared.ready.notify_all();
                if exit {
                    return conn;
                }
            }
        }
    }
}

/// Run one range exchange against one backend over the worker's
/// persistent connection (dialing if needed), forwarding new lines (past
/// the task's resume point) to the merge — and stopping early if a thief
/// shrinks this attempt's effective end. Returns the outcome and how
/// many *new* lines made it out.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    addr: &str,
    desc: &GridDesc,
    config: &FleetConfig,
    task: &ShardTask,
    ctl: &TaskCtl,
    shared: &Shared,
    tx: &mpsc::Sender<(usize, String)>,
    conn: &mut Option<Conn>,
) -> (Attempt, usize) {
    let sub = desc.with_shard(task.range);
    let skip = task.lines_done;
    let start = task.range.start;
    let expected = task.range.len();
    let mut forwarded = 0usize;
    let mut sheds_seen = 0usize;
    let mut stale_retry_used = false;
    loop {
        let reused = conn.as_ref().is_some_and(|c| c.is_reusable());
        if !reused {
            *conn = match Conn::connect(addr, config.timeout) {
                Ok(mut c) => {
                    c.set_trace(trace_header());
                    Some(c)
                }
                Err(e) => return (Attempt::Failed(e.to_string()), forwarded),
            };
        }
        let forwarded_before = forwarded;
        let result = conn
            .as_mut()
            .expect("connection just ensured")
            .stream_campaign_ctl(&sub, |i, line| {
                // Resume semantics: the first `skip` lines were already
                // merged by a previous attempt; determinism makes this
                // attempt's prefix byte-identical, so it is skipped, not
                // re-verified. The upper bound matters just as much: a
                // garbled backend streaming MORE lines than the range holds
                // must not leak indices into a neighbouring range — the
                // merger would take them as that range's records and
                // silently drop the legitimate ones as duplicates.
                if i >= skip && i < expected {
                    let _ = tx.send((start + i, line.to_string()));
                    ctl.forwarded.fetch_add(1, Ordering::Relaxed);
                    forwarded += 1;
                }
                // Steal-abort: once a thief owns everything from the
                // effective end on, reading further only drains bytes the
                // merger would drop as duplicates. Only an actual steal
                // (effective end below the requested range end) aborts —
                // a full read must reach its natural end so the chunked
                // terminator is consumed and the connection stays
                // reusable.
                let eff_end = ctl.effective_end.load(Ordering::Relaxed);
                !(eff_end < task.range.end && start + i + 1 >= eff_end)
            });
        if result.is_err() {
            // The stream died: this connection's framing state is gone.
            *conn = None;
            // A *reused* connection failing before any line made it out is
            // most likely the backend having reaped it as idle between
            // ranges — redial once before charging a range failure.
            if reused && forwarded == forwarded_before && !stale_retry_used {
                stale_retry_used = true;
                continue;
            }
        }
        match result {
            Ok(StreamOutcome::Done { lines }) if lines == expected => {
                return (Attempt::Done, forwarded);
            }
            Ok(StreamOutcome::Stopped { .. }) => {
                // The callback stopped the read at the (stolen-down)
                // effective end. The stop condition fires only once the
                // delivery frontier reached the effective end, and steals
                // never move the end below the frontier, so everything
                // this attempt still owed has been merged: a completion.
                return (Attempt::Done, forwarded);
            }
            Ok(StreamOutcome::Done { lines }) => {
                // A clean close with too few (or too many) lines is a
                // truncated/garbled stream, not success.
                return (
                    Attempt::Failed(format!("stream closed after {lines}/{expected} lines")),
                    forwarded,
                );
            }
            Ok(StreamOutcome::Rejected {
                status: 503,
                headers,
                ..
            }) => {
                shared.with(|st| st.sheds += 1);
                tm::FLEET_SHEDS.inc();
                trace::event("fleet_shed", format!("backend={addr}"));
                sheds_seen += 1;
                if sheds_seen > config.max_shed_retries {
                    return (
                        Attempt::Failed(format!("shed {sheds_seen} times in a row")),
                        forwarded,
                    );
                }
                let wait = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(1);
                // saturating: Retry-After is backend-controlled input.
                std::thread::sleep(Duration::from_millis(
                    wait.saturating_mul(1000).clamp(100, 10_000),
                ));
            }
            Ok(StreamOutcome::Rejected { status, body, .. }) => {
                return (
                    Attempt::Fatal(FleetError::Rejected {
                        addr: addr.to_string(),
                        status,
                        body,
                    }),
                    forwarded,
                );
            }
            Err(e) => return (Attempt::Failed(e.to_string()), forwarded),
        }
    }
}
