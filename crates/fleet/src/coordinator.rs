//! The fleet coordinator: shard plan → per-backend fetch workers → ordered
//! merge, with health-checked failover.
//!
//! ```text
//!                ┌── worker(backend 0) ── POST shard k ──► joss-serve #0
//!  GridDesc ──►  │                                             │ JSONL
//!  ShardPlan ──► │   shared shard queue                        ▼
//!  (cost-        │   (retry requeues with            (global index, line)
//!   balanced)    │    the failed backend                       │
//!                │    excluded)                                ▼
//!                └── worker(backend N-1) ──────────► OrderedMerger ──► out
//! ```
//!
//! One fetch worker per backend, each running at most one shard request
//! at a time (backends parallelize *inside* a campaign; the fleet
//! parallelizes across backends). Each worker holds **one persistent
//! keep-alive connection** to its backend and streams every shard down
//! it; a connection the backend closed between shards (idle reap, restart)
//! is redialed transparently — only a failure that cost record lines
//! counts as a shard failure. Failure policy, in order:
//!
//! * **503 shed** — the backend is alive but saturated; honour
//!   `Retry-After` on the same backend, bounded by `max_shed_retries`.
//! * **4xx** — a description fault (unknown workload, out-of-range knob);
//!   retrying elsewhere cannot help, the run aborts with the body.
//! * **transport error / truncated stream** — the shard is requeued for
//!   any *other* backend, resuming after the lines that already reached
//!   the merge (byte-determinism makes the retry's prefix identical, so
//!   skipping it is sound). The failed backend is re-probed: if its
//!   health check fails too it is marked dead, its worker exits, and the
//!   resharding is bounded — remaining shards drain onto survivors, and
//!   the run aborts once a shard has no untried live backend left or
//!   exceeds `max_attempts`.

use crate::backend::{self, BackendInfo};
use crate::merge::OrderedMerger;
use joss_serve::client::{Conn, StreamOutcome};
use joss_sweep::shard::plan_grid;
use joss_sweep::{GridDesc, SpecRange};
use std::collections::VecDeque;
use std::fmt;
use std::io::{self, Write};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Fleet topology and retry policy.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backend addresses (`host:port`), one fetch worker each.
    pub backends: Vec<String>,
    /// Shards to cut the grid into; 0 = auto (two per backend, so one
    /// slow shard does not idle the rest of the fleet).
    pub shards: usize,
    /// Per-exchange socket timeout.
    pub timeout: Duration,
    /// How long to wait for each backend's first health probe.
    pub ready_timeout: Duration,
    /// Most failed tries per shard before the run aborts; 0 = one try
    /// per backend.
    pub max_attempts: usize,
    /// Most 503 sheds tolerated per shard attempt (each waits out the
    /// backend's `Retry-After`).
    pub max_shed_retries: usize,
    /// Training seed every backend must report (None = follow the first
    /// backend).
    pub expect_train_seed: Option<u64>,
    /// Training reps every backend must report (None = follow the first
    /// backend).
    pub expect_reps: Option<u32>,
}

impl FleetConfig {
    /// Defaults for a given backend list.
    pub fn new(backends: Vec<String>) -> Self {
        FleetConfig {
            backends,
            shards: 0,
            timeout: Duration::from_secs(120),
            ready_timeout: Duration::from_secs(30),
            max_attempts: 0,
            max_shed_retries: 30,
            expect_train_seed: None,
            expect_reps: None,
        }
    }

    fn effective_shards(&self, run_count: usize) -> usize {
        let auto = self.backends.len().max(1) * 2;
        (if self.shards == 0 { auto } else { self.shards }).clamp(1, run_count)
    }

    fn effective_max_attempts(&self) -> usize {
        if self.max_attempts == 0 {
            self.backends.len().max(1)
        } else {
            self.max_attempts
        }
    }
}

/// Why a fleet run could not produce the merged grid.
#[derive(Debug)]
pub enum FleetError {
    /// The coordinator was given no backends.
    NoBackends,
    /// A backend never answered its health probe, or answered garbage.
    Probe(String),
    /// Backends disagree on training parameters or record schema.
    Incompatible(String),
    /// The grid description itself is unusable (already sharded, unknown
    /// workloads, ...).
    Grid(String),
    /// A backend rejected the sub-grid with a client-fault status; the
    /// same description would fail everywhere.
    Rejected {
        /// Backend that answered.
        addr: String,
        /// Its HTTP status.
        status: u16,
        /// Its error body.
        body: String,
    },
    /// A shard ran out of live, untried backends (or attempts).
    Exhausted {
        /// Plan index of the shard.
        shard: usize,
        /// What the attempts saw.
        detail: String,
    },
    /// The merge output failed to write.
    Io(io::Error),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoBackends => write!(f, "fleet has no backends"),
            FleetError::Probe(msg) | FleetError::Incompatible(msg) | FleetError::Grid(msg) => {
                write!(f, "{msg}")
            }
            FleetError::Rejected { addr, status, body } => {
                write!(f, "backend {addr} rejected the grid with {status}: {body}")
            }
            FleetError::Exhausted { shard, detail } => {
                write!(f, "shard {shard} ran out of backends: {detail}")
            }
            FleetError::Io(e) => write!(f, "merge output failed: {e}"),
        }
    }
}

impl std::error::Error for FleetError {}

/// What a completed fleet run did.
#[derive(Debug)]
pub struct FleetReport {
    /// Shards the plan cut the grid into.
    pub shards: usize,
    /// Records merged (== the grid's spec count on success).
    pub records: usize,
    /// Shard attempts that failed over to another backend.
    pub failovers: usize,
    /// 503 sheds absorbed (each waited out a `Retry-After`).
    pub sheds: usize,
    /// Shards completed per backend, in [`FleetConfig::backends`] order.
    pub completed_per_backend: Vec<(String, usize)>,
    /// Backends whose post-failure health re-probe also failed.
    pub dead_backends: Vec<String>,
    /// High-water mark of the merge reorder buffer, in lines.
    pub max_buffered_lines: usize,
}

impl FleetReport {
    /// One-line human summary (the `joss_fleet` CLI footer).
    pub fn summary(&self) -> String {
        let per_backend: Vec<String> = self
            .completed_per_backend
            .iter()
            .map(|(addr, n)| format!("{addr}={n}"))
            .collect();
        format!(
            "{} records over {} shards | failovers {} | sheds {} | dead {:?} | \
             shards per backend: {} | merge buffer peak {} lines",
            self.records,
            self.shards,
            self.failovers,
            self.sheds,
            self.dead_backends,
            per_backend.join(" "),
            self.max_buffered_lines,
        )
    }
}

/// One shard's place in the retry state machine.
struct ShardTask {
    /// Plan index (stable across retries; used in errors/logs).
    shard: usize,
    /// Global spec range.
    range: SpecRange,
    /// Backends (by index) that already failed this shard.
    excluded: Vec<usize>,
    /// Failed tries so far.
    attempts: usize,
    /// Lines of this shard already delivered to the merge — a retry
    /// skips this many lines and splices the rest.
    lines_done: usize,
}

/// Queue + liveness state shared by the fetch workers.
struct Shared {
    state: Mutex<QueueState>,
    ready: Condvar,
}

struct QueueState {
    pending: VecDeque<ShardTask>,
    in_flight: usize,
    dead: Vec<bool>,
    fatal: Option<FleetError>,
    failovers: usize,
    sheds: usize,
    completed: Vec<usize>,
}

impl Shared {
    fn with<R>(&self, f: impl FnOnce(&mut QueueState) -> R) -> R {
        let mut st = self.state.lock().expect("fleet queue lock");
        let r = f(&mut st);
        self.ready.notify_all();
        r
    }
}

/// Live backends that have not yet failed this task.
fn candidates(st: &QueueState, task: &ShardTask, n_backends: usize) -> usize {
    (0..n_backends)
        .filter(|b| !st.dead[*b] && !task.excluded.contains(b))
        .count()
}

/// Execute `desc` across the fleet, writing the merged JSONL (global spec
/// order, byte-identical to a single-node run) to `out`. `out` is written
/// incrementally; hand it a buffered writer. On error the stream may be
/// truncated — a failed fleet run is not a usable record file.
pub fn run_fleet(
    config: &FleetConfig,
    desc: &GridDesc,
    out: &mut impl Write,
) -> Result<FleetReport, FleetError> {
    if config.backends.is_empty() {
        return Err(FleetError::NoBackends);
    }
    if desc.shard.is_some() {
        return Err(FleetError::Grid(
            "the fleet shards grids itself; submit an unsharded description".into(),
        ));
    }
    let run_count = desc.spec_count();
    if run_count == 0 {
        return Err(FleetError::Grid(
            "grid needs at least one workload and one scheduler".into(),
        ));
    }

    // Health + compatibility gate: refuse to dispatch anything to a fleet
    // whose records could not merge.
    let infos: Vec<BackendInfo> = config
        .backends
        .iter()
        .map(|addr| backend::probe(addr, config.ready_timeout).map_err(FleetError::Probe))
        .collect::<Result<_, _>>()?;
    backend::verify_compatible(&infos, config.expect_train_seed, config.expect_reps)
        .map_err(FleetError::Incompatible)?;

    // Cost-balanced contiguous plan (same planner as `joss_sweep --shard`).
    let plan = plan_grid(desc, config.effective_shards(run_count)).map_err(FleetError::Grid)?;

    let n_backends = config.backends.len();
    let shared = Shared {
        state: Mutex::new(QueueState {
            pending: plan
                .ranges()
                .iter()
                .enumerate()
                .map(|(shard, &range)| ShardTask {
                    shard,
                    range,
                    excluded: Vec::new(),
                    attempts: 0,
                    lines_done: 0,
                })
                .collect(),
            in_flight: 0,
            dead: vec![false; n_backends],
            fatal: None,
            failovers: 0,
            sheds: 0,
            completed: vec![0; n_backends],
        }),
        ready: Condvar::new(),
    };

    let (tx, rx) = mpsc::channel::<(usize, String)>();
    let mut merger = OrderedMerger::new(out, 0, run_count);

    std::thread::scope(|scope| {
        for (b, addr) in config.backends.iter().enumerate() {
            let tx = tx.clone();
            let shared = &shared;
            scope.spawn(move || fetch_worker(b, addr, desc, config, shared, tx));
        }
        drop(tx);
        // The merge runs on the coordinating thread: restore global order
        // and stream to the caller's writer as lines arrive.
        for (index, line) in rx {
            if let Err(e) = merger.push(index, &line) {
                shared.with(|st| {
                    if st.fatal.is_none() {
                        st.fatal = Some(FleetError::Io(e));
                    }
                });
                break; // dropping rx unblocks nothing (sends just fail)
            }
        }
    });

    let (fatal, failovers, sheds, dead, completed) = {
        let mut st = shared.state.lock().expect("fleet queue lock");
        (
            st.fatal.take(),
            st.failovers,
            st.sheds,
            st.dead.clone(),
            st.completed.clone(),
        )
    };
    if let Some(error) = fatal {
        return Err(error);
    }
    if !merger.is_complete() {
        // Unreachable by construction (every shard either completed or
        // flagged fatal) — but a truncated merge must never pass silently.
        return Err(FleetError::Exhausted {
            shard: usize::MAX,
            detail: format!(
                "merge stalled at record {} of {run_count}",
                merger.frontier()
            ),
        });
    }
    let max_buffered_lines = merger.max_buffered();
    merger.finish().map_err(FleetError::Io)?;
    Ok(FleetReport {
        shards: plan.len(),
        records: run_count,
        failovers,
        sheds,
        completed_per_backend: config.backends.iter().cloned().zip(completed).collect(),
        dead_backends: config
            .backends
            .iter()
            .zip(&dead)
            .filter(|(_, &d)| d)
            .map(|(a, _)| a.clone())
            .collect(),
        max_buffered_lines,
    })
}

/// How one shard attempt ended (worker-internal).
enum Attempt {
    Done,
    Failed(String),
    Fatal(FleetError),
}

/// One backend's fetch loop: claim shards this backend has not failed,
/// stream them into the merge, requeue on failure.
fn fetch_worker(
    b: usize,
    addr: &str,
    desc: &GridDesc,
    config: &FleetConfig,
    shared: &Shared,
    tx: mpsc::Sender<(usize, String)>,
) {
    let n_backends = config.backends.len();
    // The worker's persistent connection: dialed on first use, kept across
    // shards, dropped (and redialed) after any transport failure.
    let mut conn: Option<Conn> = None;
    loop {
        // Claim the next shard not excluded for this backend, or exit
        // when the queue has fully drained / the run went fatal / this
        // backend was declared dead.
        let mut st = shared.state.lock().expect("fleet queue lock");
        let task = loop {
            if st.fatal.is_some() || st.dead[b] {
                return;
            }
            if st.pending.is_empty() && st.in_flight == 0 {
                return;
            }
            if let Some(pos) = st.pending.iter().position(|t| !t.excluded.contains(&b)) {
                st.in_flight += 1;
                break st.pending.remove(pos).expect("position just found");
            }
            let (next, _) = shared
                .ready
                .wait_timeout(st, Duration::from_millis(50))
                .expect("fleet queue lock");
            st = next;
        };
        drop(st);

        let (outcome, forwarded) = run_shard(addr, desc, config, &task, shared, &tx, &mut conn);
        match outcome {
            Attempt::Done => shared.with(|st| {
                st.in_flight -= 1;
                st.completed[b] += 1;
            }),
            Attempt::Fatal(error) => {
                shared.with(|st| {
                    st.in_flight -= 1;
                    if st.fatal.is_none() {
                        st.fatal = Some(error);
                    }
                });
                return;
            }
            Attempt::Failed(why) => {
                // Distinguish "that backend is gone" from "that exchange
                // failed": a dead backend is excluded from everything and
                // its worker exits; a live one only loses this shard.
                let alive = backend::is_alive(addr, Duration::from_secs(2));
                let mut task = task;
                task.lines_done += forwarded;
                task.attempts += 1;
                task.excluded.push(b);
                let exit = shared.with(|st| {
                    st.in_flight -= 1;
                    st.failovers += 1;
                    if !alive {
                        st.dead[b] = true;
                    }
                    let detail = format!(
                        "attempt {} on backend {addr} failed ({why}); \
                         {} of {} lines salvaged",
                        task.attempts,
                        task.lines_done,
                        task.range.len()
                    );
                    if candidates(st, &task, n_backends) == 0
                        || task.attempts >= config.effective_max_attempts()
                    {
                        let shard = task.shard;
                        if st.fatal.is_none() {
                            st.fatal = Some(FleetError::Exhausted { shard, detail });
                        }
                    } else {
                        st.pending.push_back(task);
                        // A newly dead backend may have stranded *other*
                        // queued shards that already excluded every
                        // survivor.
                        if st.dead[b] {
                            if let Some(stranded) = st
                                .pending
                                .iter()
                                .find(|t| candidates(st, t, n_backends) == 0)
                            {
                                let shard = stranded.shard;
                                if st.fatal.is_none() {
                                    st.fatal = Some(FleetError::Exhausted {
                                        shard,
                                        detail: format!("no live backend left after {addr} died"),
                                    });
                                }
                            }
                        }
                    }
                    st.dead[b] || st.fatal.is_some()
                });
                if exit {
                    return;
                }
            }
        }
    }
}

/// Run one shard exchange against one backend over the worker's
/// persistent connection (dialing if needed), forwarding new lines (past
/// the task's resume point) to the merge. Returns the outcome and how
/// many *new* lines made it out.
fn run_shard(
    addr: &str,
    desc: &GridDesc,
    config: &FleetConfig,
    task: &ShardTask,
    shared: &Shared,
    tx: &mpsc::Sender<(usize, String)>,
    conn: &mut Option<Conn>,
) -> (Attempt, usize) {
    let sub = desc.with_shard(task.range);
    let skip = task.lines_done;
    let start = task.range.start;
    let expected = task.range.len();
    let mut forwarded = 0usize;
    let mut sheds_seen = 0usize;
    let mut stale_retry_used = false;
    loop {
        let reused = conn.as_ref().is_some_and(|c| c.is_reusable());
        if !reused {
            *conn = match Conn::connect(addr, config.timeout) {
                Ok(c) => Some(c),
                Err(e) => return (Attempt::Failed(e.to_string()), forwarded),
            };
        }
        let forwarded_before = forwarded;
        let result = conn
            .as_mut()
            .expect("connection just ensured")
            .stream_campaign(&sub, |i, line| {
                // Resume semantics: the first `skip` lines were already
                // merged by a previous attempt; determinism makes this
                // attempt's prefix byte-identical, so it is skipped, not
                // re-verified. The upper bound matters just as much: a
                // garbled backend streaming MORE lines than the shard holds
                // must not leak indices into a neighbouring shard's range —
                // the merger would take them as that shard's records and
                // silently drop the legitimate ones as duplicates.
                if i >= skip && i < expected {
                    let _ = tx.send((start + i, line.to_string()));
                    forwarded += 1;
                }
            });
        if result.is_err() {
            // The stream died: this connection's framing state is gone.
            *conn = None;
            // A *reused* connection failing before any line made it out is
            // most likely the backend having reaped it as idle between
            // shards — redial once before charging a shard failure.
            if reused && forwarded == forwarded_before && !stale_retry_used {
                stale_retry_used = true;
                continue;
            }
        }
        match result {
            Ok(StreamOutcome::Done { lines }) if lines == expected => {
                return (Attempt::Done, forwarded);
            }
            Ok(StreamOutcome::Done { lines }) => {
                // A clean close with too few (or too many) lines is a
                // truncated/garbled stream, not success.
                return (
                    Attempt::Failed(format!("stream closed after {lines}/{expected} lines")),
                    forwarded,
                );
            }
            Ok(StreamOutcome::Rejected {
                status: 503,
                headers,
                ..
            }) => {
                shared.with(|st| st.sheds += 1);
                sheds_seen += 1;
                if sheds_seen > config.max_shed_retries {
                    return (
                        Attempt::Failed(format!("shed {sheds_seen} times in a row")),
                        forwarded,
                    );
                }
                let wait = headers
                    .iter()
                    .find(|(k, _)| k == "retry-after")
                    .and_then(|(_, v)| v.parse::<u64>().ok())
                    .unwrap_or(1);
                // saturating: Retry-After is backend-controlled input.
                std::thread::sleep(Duration::from_millis(
                    wait.saturating_mul(1000).clamp(100, 10_000),
                ));
            }
            Ok(StreamOutcome::Rejected { status, body, .. }) => {
                return (
                    Attempt::Fatal(FleetError::Rejected {
                        addr: addr.to_string(),
                        status,
                        body,
                    }),
                    forwarded,
                );
            }
            Err(e) => return (Attempt::Failed(e.to_string()), forwarded),
        }
    }
}
