//! Standalone rate-limiting TCP proxy (see [`joss_fleet::throttle`]).
//!
//! ```text
//! joss_throttle_proxy --listen HOST:PORT --upstream HOST:PORT --bytes-per-sec N
//! ```
//!
//! Forwards every connection to `--upstream`, metering the response
//! direction to `--bytes-per-sec`. CI's fleet slow-backend scenario puts
//! this in front of one healthy `joss_serve` daemon to manufacture a
//! straggler and assert the elastic coordinator steals from it.

use std::net::TcpListener;
use std::process::exit;
use std::sync::atomic::AtomicBool;

fn usage() -> ! {
    eprintln!(
        "usage: joss_throttle_proxy --listen HOST:PORT --upstream HOST:PORT --bytes-per-sec N"
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut listen = None;
    let mut upstream = None;
    let mut bytes_per_sec: u64 = 0;
    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--listen" => listen = Some(next(&mut i)),
            "--upstream" => upstream = Some(next(&mut i)),
            "--bytes-per-sec" => bytes_per_sec = next(&mut i).parse().expect("byte rate"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    let (Some(listen), Some(upstream)) = (listen, upstream) else {
        usage();
    };
    if bytes_per_sec == 0 {
        eprintln!("error: --bytes-per-sec must be positive");
        exit(2);
    }
    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("error: bind {listen} failed: {e}");
        exit(1);
    });
    eprintln!(
        "[joss_throttle_proxy] {listen} -> {upstream} at {bytes_per_sec} B/s (responses metered)"
    );
    static RUN_FOREVER: AtomicBool = AtomicBool::new(false);
    joss_fleet::throttle::accept_loop(listener, &upstream, bytes_per_sec, &RUN_FOREVER);
}
