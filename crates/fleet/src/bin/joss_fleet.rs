//! Run one campaign grid across a fleet of `joss-serve` backends and
//! merge the streams into a single JSONL file in global spec order.
//!
//! ```text
//! joss_fleet (--backend HOST:PORT ... | --spawn N)
//!            [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]
//!            [--scale D|full] [--record-trace]
//!            [--shards M] [--no-steal] [--min-steal N] [--out FILE.jsonl]
//!            [--train-seed S] [--reps R] [--campaign-threads N]
//!            [--timeout-secs T] [--max-attempts K]
//! ```
//!
//! `--backend` (repeatable) points at running daemons; the coordinator
//! probes each `/healthz` and **refuses** backends whose train seed,
//! reps, or record schema disagree — their records would not merge
//! byte-identically. `--spawn N` instead boots N in-process daemons on
//! ephemeral ports (single-machine scale-out) with the given
//! `--train-seed`/`--reps`. The merged output is `cmp`-identical to an
//! offline `joss_sweep --out` run of the same grid and training
//! parameters — the invariant the CI `fleet-smoke` job enforces.
//! Topology and failover semantics: `docs/FLEET.md`.

use joss_fleet::{run_fleet, spawn_local_backends, FleetConfig};
use joss_serve::ServeConfig;
use joss_sweep::{GridDesc, SchedulerKind};
use joss_workloads::{fig8_labels, Scale};
use std::io::{BufWriter, Write};
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: joss_fleet (--backend HOST:PORT ... | --spawn N)\n\
         \u{20}                 [--workloads L1,L2|all] [--schedulers S1,S2] [--seeds N1,N2]\n\
         \u{20}                 [--scale D|full] [--record-trace] [--shards M]\n\
         \u{20}                 [--no-steal] [--min-steal N] [--out FILE.jsonl]\n\
         \u{20}                 [--telemetry-out FILE.jsonl]\n\
         \u{20}                 [--train-seed S] [--reps R] [--campaign-threads N]\n\
         \u{20}                 [--timeout-secs T] [--max-attempts K]\n\
         schedulers: {}",
        SchedulerKind::parse_help()
    );
    exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut backends: Vec<String> = Vec::new();
    let mut spawn = 0usize;
    let mut workload_filter: Option<Vec<String>> = None;
    let mut schedulers: Option<Vec<SchedulerKind>> = None;
    let mut seeds: Vec<u64> = Vec::new();
    let mut scale = Scale::Divided(100);
    let mut record_trace = false;
    let mut shards = 0usize;
    let mut steal = true;
    let mut min_steal = 2usize;
    let mut out_path: Option<String> = None;
    let mut telemetry_out: Option<String> = None;
    let mut train_seed = 42u64;
    let mut reps = 3u32;
    let mut campaign_threads = 0usize;
    let mut timeout_secs = 120u64;
    let mut max_attempts = 0usize;

    let mut i = 1;
    let next = |i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--backend" => backends.push(next(&mut i)),
            "--spawn" => spawn = next(&mut i).parse().expect("backend count"),
            "--workloads" => {
                let v = next(&mut i);
                if v != "all" {
                    workload_filter = Some(v.split(',').map(str::to_string).collect());
                }
            }
            "--schedulers" => {
                let parsed: Result<Vec<SchedulerKind>, String> =
                    next(&mut i).split(',').map(str::parse).collect();
                schedulers = Some(parsed.unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    usage()
                }));
            }
            "--seeds" => {
                seeds = next(&mut i)
                    .split(',')
                    .map(|s| s.parse().expect("seed must be an integer"))
                    .collect();
            }
            "--scale" => {
                let v = next(&mut i);
                scale = if v == "full" {
                    Scale::Full
                } else {
                    Scale::Divided(v.parse().expect("scale divisor"))
                };
            }
            "--record-trace" => record_trace = true,
            "--shards" => shards = next(&mut i).parse().expect("shard count"),
            "--no-steal" => steal = false,
            "--min-steal" => min_steal = next(&mut i).parse().expect("min steal size"),
            "--out" => out_path = Some(next(&mut i)),
            "--telemetry-out" => telemetry_out = Some(next(&mut i)),
            "--train-seed" => train_seed = next(&mut i).parse().expect("train seed"),
            "--reps" => reps = next(&mut i).parse().expect("training reps"),
            "--campaign-threads" => {
                campaign_threads = next(&mut i).parse().expect("campaign threads")
            }
            "--timeout-secs" => timeout_secs = next(&mut i).parse().expect("timeout seconds"),
            "--max-attempts" => max_attempts = next(&mut i).parse().expect("attempt cap"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    if backends.is_empty() == (spawn == 0) {
        eprintln!("error: give either --backend addresses or --spawn N");
        usage();
    }

    // Grid description: same defaults as joss_sweep (all 21 workloads,
    // the Fig. 8 scheduler set with a scale-proportional Aequitas slice).
    let slice = match scale {
        Scale::Full => 1.0,
        Scale::Divided(d) => (1.0 / d as f64).max(0.005),
    };
    let desc = GridDesc {
        workloads: workload_filter.unwrap_or_else(fig8_labels),
        schedulers: schedulers.unwrap_or_else(|| SchedulerKind::fig8_set(slice)),
        seeds: if seeds.is_empty() { vec![42] } else { seeds },
        scale,
        record_trace,
        shard: None,
    };

    // Boot in-process backends if asked, splitting the host's cores
    // between them so N local daemons do not oversubscribe N-fold.
    let spawned = if spawn > 0 {
        let threads = if campaign_threads > 0 {
            campaign_threads
        } else {
            joss_sweep::default_threads().div_ceil(spawn)
        };
        let template = ServeConfig {
            train_seed,
            reps,
            campaign_threads: threads,
            ..ServeConfig::default()
        };
        let handles = spawn_local_backends(spawn, &template).unwrap_or_else(|e| {
            eprintln!("error: failed to spawn local backends: {e}");
            exit(1);
        });
        backends = handles.iter().map(|h| h.addr().to_string()).collect();
        eprintln!("[joss_fleet] spawned {spawn} local backends: {backends:?}");
        handles
    } else {
        Vec::new()
    };

    let config = FleetConfig {
        shards,
        steal,
        min_steal,
        timeout: Duration::from_secs(timeout_secs),
        max_attempts,
        expect_train_seed: Some(train_seed),
        expect_reps: Some(reps),
        ..FleetConfig::new(backends)
    };
    eprintln!(
        "[joss_fleet] dispatching {} specs across {} backends...",
        desc.spec_count(),
        config.backends.len()
    );

    let started = std::time::Instant::now();
    let report = match out_path {
        Some(ref path) => {
            let file = std::fs::File::create(path).expect("create output file");
            let mut out = BufWriter::new(file);
            let report = run_fleet(&config, &desc, &mut out);
            out.flush().expect("flush output file");
            report
        }
        None => {
            let stdout = std::io::stdout();
            let mut out = BufWriter::new(stdout.lock());
            let report = run_fleet(&config, &desc, &mut out);
            out.flush().expect("flush stdout");
            report
        }
    };

    for handle in spawned {
        let _ = handle.stop();
    }

    if let Some(path) = &telemetry_out {
        std::fs::write(path, joss_telemetry::snapshot_jsonl()).expect("write telemetry snapshot");
        eprintln!("[joss_fleet] wrote telemetry snapshot to {path}");
    }

    match report {
        Ok(report) => {
            eprintln!(
                "[joss_fleet] done in {:.2}s: {}",
                started.elapsed().as_secs_f64(),
                report.summary()
            );
            if let Some(path) = out_path {
                eprintln!("[joss_fleet] wrote {} records to {path}", report.records);
            }
        }
        Err(e) => {
            eprintln!("error: fleet run failed: {e}");
            exit(1);
        }
    }
}
