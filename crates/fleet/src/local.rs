//! Single-machine scale-out: boot N in-process `joss-serve` daemons on
//! ephemeral ports (`joss_fleet --spawn N`, tests, benches).

use joss_serve::{ServeConfig, Server, ServerHandle};
use std::io;

/// Spawn `n` daemons sharing `template`'s parameters, each bound to its
/// own `127.0.0.1:0` ephemeral port. The handles' addresses are the
/// backend list; stop each handle when done.
///
/// Every daemon trains its own context lazily (first shard pays it) —
/// call [`Server::train`] before `spawn` via [`spawn_local_backends_with`]
/// when characterization latency must stay out of the measurement.
pub fn spawn_local_backends(n: usize, template: &ServeConfig) -> io::Result<Vec<ServerHandle>> {
    spawn_local_backends_with(n, template, false)
}

/// [`spawn_local_backends`], optionally training each daemon's context
/// eagerly before it starts accepting.
pub fn spawn_local_backends_with(
    n: usize,
    template: &ServeConfig,
    train_eager: bool,
) -> io::Result<Vec<ServerHandle>> {
    (0..n.max(1))
        .map(|_| {
            let config = ServeConfig {
                addr: "127.0.0.1:0".into(),
                ..template.clone()
            };
            let server = Server::bind(config)?;
            if train_eager {
                server.train();
            }
            server.spawn()
        })
        .collect()
}
