//! # joss-fleet — sharded campaign execution across serve backends
//!
//! One `joss-serve` daemon is bounded by one machine; the paper's
//! evaluation grid — and every what-if sweep built on it — is
//! embarrassingly parallel at the *grid* level, because each spec
//! (workload × scheduler × DVFS config × seed) is an independent,
//! deterministic simulation. This crate is the distribution layer on top
//! of PR 4's wire protocol: a coordinator that takes **one**
//! [`joss_sweep::GridDesc`], cuts it into cost-balanced contiguous shards
//! ([`joss_sweep::ShardPlan`]), fans the sub-grids out to N backends over
//! the existing serve client, and merges the streamed record lines back
//! into **global spec order** as they arrive.
//!
//! * [`backend`] — health probing and compatibility checks: a backend's
//!   `/healthz` carries its train seed/reps and record schema, and the
//!   coordinator refuses to merge records from mismatched backends;
//! * [`merge`] — [`OrderedMerger`], the reorder buffer that turns
//!   out-of-order shard streams into one in-order JSONL stream;
//! * [`coordinator`] — [`run_fleet`]: the work queue, per-backend fetch
//!   workers, and the failover policy (retry a failed shard on surviving
//!   backends, excluding the one that failed, resuming mid-shard);
//! * [`local`] — boot N in-process daemons for single-machine scale-out
//!   (`joss_fleet --spawn N`) and tests.
//!
//! The invariant everything hangs off, extending the serve layer's:
//! **fleet-merged bytes are identical to a single-node
//! [`joss_sweep::Campaign::run_streaming`] → [`joss_sweep::JsonlSink`]
//! run of the whole grid** with the same training parameters — for any
//! shard count, any backend count, and any backend failure the retries
//! can absorb. Determinism is what makes mid-stream failover cheap: a
//! retried shard reproduces the exact bytes the dead backend already
//! sent, so the coordinator skips the merged prefix and splices the rest.
//! `crates/fleet/tests/fleet.rs` kills a backend mid-stream and `cmp`s;
//! the CI `fleet-smoke` job does the same over real processes.
//! Topology and semantics: `docs/FLEET.md`.

pub mod backend;
pub mod coordinator;
pub mod local;
pub mod merge;

pub use backend::{is_alive, probe, verify_compatible, BackendInfo};
pub use coordinator::{run_fleet, FleetConfig, FleetError, FleetReport};
pub use local::{spawn_local_backends, spawn_local_backends_with};
pub use merge::OrderedMerger;
