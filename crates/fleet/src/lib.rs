//! # joss-fleet — sharded campaign execution across serve backends
//!
//! One `joss-serve` daemon is bounded by one machine; the paper's
//! evaluation grid — and every what-if sweep built on it — is
//! embarrassingly parallel at the *grid* level, because each spec
//! (workload × scheduler × DVFS config × seed) is an independent,
//! deterministic simulation. This crate is the distribution layer on top
//! of PR 4's wire protocol: a coordinator that takes **one**
//! [`joss_sweep::GridDesc`], cuts it into cost-balanced contiguous shards
//! ([`joss_sweep::ShardPlan`]), fans the sub-grids out to N backends over
//! the existing serve client, and merges the streamed record lines back
//! into **global spec order** as they arrive.
//!
//! * [`backend`] — health probing and compatibility checks: a backend's
//!   `/healthz` carries its train seed/reps and record schema, and the
//!   coordinator refuses to merge records from mismatched backends;
//! * [`merge`] — [`OrderedMerger`], the reorder buffer that turns
//!   out-of-order shard streams into one in-order JSONL stream;
//! * [`coordinator`] — [`run_fleet`]: the shared micro-range work queue,
//!   per-backend fetch workers, **work stealing** (an idle worker
//!   re-issues the undelivered tail of a straggler's in-flight range),
//!   and the failover policy (retry a failed range on surviving
//!   backends, excluding the one that failed, resuming mid-range);
//! * [`local`] — boot N in-process daemons for single-machine scale-out
//!   (`joss_fleet --spawn N`) and tests;
//! * [`throttle`] — [`ThrottleProxy`], a rate-limiting TCP proxy that
//!   manufactures stragglers for steal tests, benches, and CI.
//!
//! The invariant everything hangs off, extending the serve layer's:
//! **fleet-merged bytes are identical to a single-node
//! [`joss_sweep::Campaign::run_streaming`] → [`joss_sweep::JsonlSink`]
//! run of the whole grid** with the same training parameters — for any
//! shard count, any backend count, any steal schedule, and any backend
//! failure the retries can absorb. Determinism is what makes both
//! mid-stream failover and stealing cheap: a retried range reproduces
//! the exact bytes the dead backend already sent (the coordinator skips
//! the merged prefix and splices the rest), and a stolen tail that the
//! victim races into anyway yields duplicate global indices the
//! [`OrderedMerger`] drops for free.
//! `crates/fleet/tests/fleet.rs` kills a backend mid-stream and `cmp`s;
//! the CI `fleet-smoke` job does the same over real processes.
//! Topology and semantics: `docs/FLEET.md`.

pub mod backend;
pub mod coordinator;
pub mod local;
pub mod merge;
pub mod throttle;

pub use backend::{
    fetch_progress, is_alive, probe, verify_compatible, BackendInfo, CampaignProgress,
};
pub use coordinator::{run_fleet, FleetConfig, FleetError, FleetReport, FleetSession};
pub use local::{spawn_local_backends, spawn_local_backends_with};
pub use merge::OrderedMerger;
pub use throttle::ThrottleProxy;
