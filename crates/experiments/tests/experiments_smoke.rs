//! Smoke tests for every experiment module at tiny scale: each artifact
//! regenerates, renders, and satisfies its headline invariant.

use joss_experiments::{fig1, fig10, fig2, fig5, fig8, fig9, overhead, table1, ExperimentContext};
use joss_workloads::Scale;
use std::sync::OnceLock;

fn ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 1))
}

#[test]
fn fig1_scenarios_never_regress_with_more_information() {
    let f = fig1::run(ctx(), Scale::Divided(400), 42);
    assert_eq!(f.benches.len(), 2);
    for b in &f.benches {
        let [s1, s2, s3, s4] = &b.scenarios[..] else {
            panic!("four scenarios")
        };
        // More knobs / better objectives can only help.
        assert!(
            s2.energy.total_j() <= s1.energy.total_j() + 1e-9,
            "{}",
            b.label
        );
        assert!(
            s4.energy.total_j() <= s3.energy.total_j() + 1e-9,
            "{}",
            b.label
        );
        assert!(
            s4.energy.total_j() <= s2.energy.total_j() + 1e-9,
            "{}",
            b.label
        );
    }
    assert!(f.render(ctx()).contains("scenario"));
}

#[test]
fn fig2_frontier_is_monotone_in_time() {
    let f = fig2::run(ctx(), Scale::Divided(400), 42);
    for b in &f.benches {
        let times: Vec<f64> = b.points.iter().map(|p| p.energy.makespan_s).collect();
        assert!(
            times.windows(2).all(|w| w[1] <= w[0] * 1.02),
            "{}: walking toward max config must not slow down: {times:?}",
            b.label
        );
    }
}

#[test]
fn fig5_power_trends_match_paper() {
    let f = fig5::run(ctx());
    assert_eq!(f.points.len(), 45);
    // Within one MB level, CPU power grows with fC.
    let level: Vec<_> = f.points.iter().filter(|p| p.mb == 0.02).collect();
    let max_fc = level
        .iter()
        .max_by(|a, b| a.fc_ghz.partial_cmp(&b.fc_ghz).unwrap())
        .unwrap();
    let min_fc = level
        .iter()
        .min_by(|a, b| a.fc_ghz.partial_cmp(&b.fc_ghz).unwrap())
        .unwrap();
    assert!(max_fc.cpu_w > min_fc.cpu_w);
    // Memory power grows with MB at fixed frequencies.
    let hi_mb = f
        .points
        .iter()
        .find(|p| p.mb == 0.72 && p.fc_ghz > 2.0 && p.fm_ghz > 1.8)
        .unwrap();
    let lo_mb = f
        .points
        .iter()
        .find(|p| p.mb == 0.02 && p.fc_ghz > 2.0 && p.fm_ghz > 1.8)
        .unwrap();
    assert!(hi_mb.mem_w > lo_mb.mem_w);
}

#[test]
fn fig8_headline_shape_holds_at_small_scale() {
    let f = fig8::run(ctx(), Scale::Divided(400), 42, 0.005);
    assert_eq!(f.rows.len(), 21);
    assert_eq!(f.schedulers.len(), 6);
    let geo = f.geo_means();
    let (grws, joss, nomem) = (geo[0], geo[4], geo[5]);
    assert!((grws - 1.0).abs() < 1e-9, "GRWS is its own baseline");
    assert!(joss < grws, "JOSS must beat GRWS: {geo:?}");
    assert!(joss <= nomem + 1e-9, "the fM knob must not hurt: {geo:?}");
    assert!(f.render().contains("Geo.Mean"));
}

#[test]
fn fig9_energy_rises_with_the_target() {
    let f = fig9::run(ctx(), Scale::Divided(400), 42);
    let inc = f.mean_energy_increase();
    assert!(inc[0].abs() < 1e-9, "JOSS is its own baseline");
    assert!(inc[4] > 0.0, "MAXP must cost energy");
    assert!(f.render().contains("mean energy increase"));
}

#[test]
fn fig10_perf_model_is_most_accurate() {
    let f = fig10::run(ctx(), Scale::Divided(400));
    let [(_, p), (_, c), (_, m)] = f.stats();
    assert!(p.mean > 0.9, "performance model: {p:?}");
    assert!(
        p.mean > c.mean && p.mean > m.mean,
        "perf model leads, as in the paper"
    );
}

#[test]
fn overhead_matches_section_7_4() {
    let o = overhead::run(ctx(), Scale::Divided(400));
    assert!(!o.tx2.is_empty());
    assert!(
        o.mean_eval_reduction() > 0.4,
        "steepest descent must cut evaluations substantially: {}",
        o.mean_eval_reduction()
    );
    assert!(o.mean_reduction_ratio() > 0.9);
    assert_eq!(o.tx2_storage_entries, 3 * 5 * 5 * 3);
    assert!(o.large_storage_entries > o.tx2_storage_entries);
}

#[test]
fn table1_matches_paper_counts() {
    let t = table1::run();
    let by_abbr = |a: &str| t.rows.iter().find(|r| r.abbr == a).unwrap();
    assert_eq!(by_abbr("DP").tasks, vec![20_200]);
    assert_eq!(by_abbr("FB").tasks, vec![57_313]);
    assert_eq!(by_abbr("VG").tasks, vec![5_090]);
    assert_eq!(by_abbr("BI").tasks, vec![6_217]);
    assert_eq!(by_abbr("AL").tasks, vec![47_840]);
    assert!(t.render().contains("Heat diffusion"));
}
