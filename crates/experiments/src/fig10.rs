//! Fig. 10 — prediction accuracy of the three models (performance, CPU
//! power, memory power) across the evaluated benchmarks.
//!
//! For every kernel of every suite benchmark: sample it the way the runtime
//! does (two core frequencies, noisy measurements), build the prediction
//! tables, then compare predictions against measured "real" values at every
//! configuration of the four-knob space. Accuracy = `1 - |real - pred| /
//! real`, averaged per benchmark; the figure reports the distribution.

use joss_models::{accuracy, AccuracyStats};
use joss_platform::ExecContext;
use joss_sweep::{default_threads, ordered_parallel_map, ExperimentContext};
use joss_workloads::{fig8_suite, Scale};
use std::fmt::Write as _;

/// The full Fig. 10 result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Per-benchmark mean accuracy of the performance model.
    pub perf: Vec<f64>,
    /// Per-benchmark mean accuracy of the CPU power model.
    pub cpu: Vec<f64>,
    /// Per-benchmark mean accuracy of the memory power model.
    pub mem: Vec<f64>,
}

/// Run the Fig. 10 experiment on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale) -> Fig10 {
    run_with(default_threads(), ctx, scale)
}

/// Run the Fig. 10 experiment: each benchmark's sample/predict/compare
/// cycle is independent, so benchmarks fan out over `threads` workers.
pub fn run_with(threads: usize, ctx: &ExperimentContext, scale: Scale) -> Fig10 {
    let suite = fig8_suite(scale);
    let ectx = ExecContext::alone();
    let per_bench = ordered_parallel_map(threads, &suite, |bi, bench| {
        let mut acc_p = Vec::new();
        let mut acc_c = Vec::new();
        let mut acc_m = Vec::new();
        for (ki, kernel) in bench.graph.kernels().iter().enumerate() {
            // Runtime-style sampling: noisy measurements at the two sampling
            // frequencies for every admissible <TC,NC>.
            let samples: Vec<Option<(f64, f64)>> = ctx
                .models
                .indexer()
                .iter()
                .map(|(tc, nc)| {
                    let width = ctx.space.nc_count(tc, nc);
                    if width > kernel.max_width {
                        return None;
                    }
                    let key = |phase: u64| {
                        [
                            0xF16u64,
                            bi as u64,
                            ki as u64,
                            tc.index() as u64,
                            width as u64,
                            phase,
                        ]
                    };
                    let t_ref = ctx
                        .machine
                        .execute(
                            &kernel.shape,
                            tc,
                            width,
                            ctx.models.fc_ref_ghz(),
                            ctx.models.fm_ref_ghz(),
                            &ectx,
                            &key(0),
                        )
                        .duration
                        .as_secs_f64();
                    let t_alt = ctx
                        .machine
                        .execute(
                            &kernel.shape,
                            tc,
                            width,
                            ctx.models.fc_alt_ghz(),
                            ctx.models.fm_ref_ghz(),
                            &ectx,
                            &key(1),
                        )
                        .duration
                        .as_secs_f64();
                    Some((t_ref, t_alt))
                })
                .collect();
            let tables = ctx.models.build_kernel_tables(&samples);
            // Compare to measured reality at every configuration.
            for cfg in ctx.space.iter_all() {
                let width = ctx.space.nc_count(cfg.tc, cfg.nc);
                if width > kernel.max_width {
                    continue;
                }
                let real = ctx.machine.execute(
                    &kernel.shape,
                    cfg.tc,
                    width,
                    ctx.space.fc_ghz(cfg.fc),
                    ctx.space.fm_ghz(cfg.fm),
                    &ectx,
                    &[
                        0xA2EA1u64,
                        bi as u64,
                        ki as u64,
                        cfg.fc.0 as u64,
                        cfg.fm.0 as u64,
                        cfg.tc.index() as u64,
                        width as u64,
                    ],
                );
                acc_p.push(accuracy(real.duration.as_secs_f64(), tables.time_s(cfg)));
                // Power accuracy is evaluated at the rail level (dynamic +
                // characterized idle), which is what the INA3221 actually
                // measures and what the scheduler's energy estimates use.
                let fc_ix = cfg.fc;
                let fm_ix = cfg.fm;
                let cpu_idle = ctx.models.idle.cluster_idle_w(cfg.tc, fc_ix);
                let mem_idle = ctx.models.idle.mem_idle_w(fm_ix);
                acc_c.push(accuracy(
                    real.cpu_dyn_w + cpu_idle,
                    tables.cpu_w(cfg) + cpu_idle,
                ));
                acc_m.push(accuracy(
                    real.mem_dyn_w + mem_idle,
                    tables.mem_w(cfg) + mem_idle,
                ));
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        (mean(&acc_p), mean(&acc_c), mean(&acc_m))
    });
    let mut perf = Vec::with_capacity(per_bench.len());
    let mut cpu = Vec::with_capacity(per_bench.len());
    let mut mem = Vec::with_capacity(per_bench.len());
    for (p, c, m) in per_bench {
        perf.push(p);
        cpu.push(c);
        mem.push(m);
    }
    Fig10 { perf, cpu, mem }
}

impl Fig10 {
    /// Distribution statistics per model.
    pub fn stats(&self) -> [(&'static str, AccuracyStats); 3] {
        [
            (
                "performance",
                AccuracyStats::from_samples(&self.perf).expect("non-empty"),
            ),
            (
                "CPU power",
                AccuracyStats::from_samples(&self.cpu).expect("non-empty"),
            ),
            (
                "memory power",
                AccuracyStats::from_samples(&self.mem).expect("non-empty"),
            ),
        ]
    }

    /// Text rendering of the figure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Fig. 10 — model prediction accuracy across benchmarks"
        )
        .unwrap();
        writeln!(
            out,
            "{:<14} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "model", "mean", "median", "p25", "p75", "min", "max"
        )
        .unwrap();
        for (name, s) in self.stats() {
            writeln!(
                out,
                "{:<14} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                name, s.mean, s.median, s.p25, s.p75, s.min, s.max
            )
            .unwrap();
        }
        writeln!(
            out,
            "\n(paper: performance 97% mean, CPU power 90%, memory power 80%)"
        )
        .unwrap();
        out
    }
}
