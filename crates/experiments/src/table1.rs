//! Table 1 — the benchmark inventory, with generated task counts at full
//! scale compared against the paper's reported numbers.

use joss_workloads::suite::{table1, Table1Row};
use std::fmt::Write as _;

/// The rendered inventory.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Inventory rows.
    pub rows: Vec<Table1Row>,
}

/// Run (generate) the Table 1 inventory.
pub fn run() -> Table1 {
    Table1 { rows: table1() }
}

impl Table1 {
    /// Text rendering of the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Table 1 — evaluated benchmarks (full-scale task counts)"
        )
        .unwrap();
        writeln!(
            out,
            "{:<5} {:<42} {:<38} {:<20}",
            "abbr", "description", "input", "tasks"
        )
        .unwrap();
        for r in &self.rows {
            let tasks: Vec<String> = r.tasks.iter().map(|t| t.to_string()).collect();
            writeln!(
                out,
                "{:<5} {:<42} {:<38} {:<20}",
                r.abbr,
                r.description,
                r.input,
                tasks.join(", ")
            )
            .unwrap();
        }
        out
    }
}
