//! Table 1 — the benchmark inventory, with generated task counts at full
//! scale compared against the paper's reported numbers.

use joss_sweep::{default_threads, ordered_parallel_map};
use joss_workloads::suite::{table1_row, Table1Row, TABLE1_LEN};
use std::fmt::Write as _;

/// The rendered inventory.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// Inventory rows.
    pub rows: Vec<Table1Row>,
}

/// Run (generate) the Table 1 inventory on all available cores.
pub fn run() -> Table1 {
    run_with(default_threads())
}

/// Generate the inventory with rows fanned out over `threads` workers
/// (full-scale DAG generation — tens of thousands of tasks per row — is
/// the expensive part).
pub fn run_with(threads: usize) -> Table1 {
    let indices: Vec<usize> = (0..TABLE1_LEN).collect();
    Table1 {
        rows: ordered_parallel_map(threads, &indices, |_, &i| table1_row(i)),
    }
}

impl Table1 {
    /// Text rendering of the table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Table 1 — evaluated benchmarks (full-scale task counts)"
        )
        .unwrap();
        writeln!(
            out,
            "{:<5} {:<42} {:<38} {:<20}",
            "abbr", "description", "input", "tasks"
        )
        .unwrap();
        for r in &self.rows {
            let tasks: Vec<String> = r.tasks.iter().map(|t| t.to_string()).collect();
            writeln!(
                out,
                "{:<5} {:<42} {:<38} {:<20}",
                r.abbr,
                r.description,
                r.input,
                tasks.join(", ")
            )
            .unwrap();
        }
        out
    }
}
