//! Fig. 8 — total energy consumption of GRWS, ERASE, Aequitas, STEER, JOSS
//! and JOSS_NoMemDVFS across the 21 benchmark instances, normalized to
//! GRWS (lower is better).

use joss_core::metrics::RunReport;
use joss_sweep::{
    rows_by_workload, Campaign, ExperimentContext, SchedulerKind, SpecGrid, Workload,
};
use joss_workloads::{fig8_suite, Scale};
use std::fmt::Write as _;

/// One benchmark's results across schedulers.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark label.
    pub label: String,
    /// Reports in [`SchedulerKind::fig8_set`] order.
    pub reports: Vec<RunReport>,
}

/// Full Fig. 8 result.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// Scheduler names, in column order.
    pub schedulers: Vec<String>,
    /// Per-benchmark rows.
    pub rows: Vec<Fig8Row>,
}

impl Fig8 {
    /// Normalized (to GRWS) total energy per row and scheduler.
    pub fn normalized(&self) -> Vec<(String, Vec<f64>)> {
        self.rows
            .iter()
            .map(|r| {
                let base = r.reports[0].total_j();
                (
                    r.label.clone(),
                    r.reports.iter().map(|x| x.total_j() / base).collect(),
                )
            })
            .collect()
    }

    /// Geometric mean of normalized energies per scheduler.
    pub fn geo_means(&self) -> Vec<f64> {
        let norm = self.normalized();
        let n_sched = self.schedulers.len();
        (0..n_sched)
            .map(|s| {
                let log_sum: f64 = norm.iter().map(|(_, v)| v[s].ln()).sum();
                (log_sum / norm.len() as f64).exp()
            })
            .collect()
    }

    /// Text rendering (the paper's figure as a table).
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Fig. 8 — total energy normalized to GRWS (lower is better)"
        )
        .unwrap();
        write!(out, "{:<16}", "benchmark").unwrap();
        for s in &self.schedulers {
            write!(out, " {s:>15}").unwrap();
        }
        writeln!(out).unwrap();
        for (label, vals) in self.normalized() {
            write!(out, "{label:<16}").unwrap();
            for v in vals {
                write!(out, " {v:>15.3}").unwrap();
            }
            writeln!(out).unwrap();
        }
        write!(out, "{:<16}", "Geo.Mean").unwrap();
        for g in self.geo_means() {
            write!(out, " {g:>15.3}").unwrap();
        }
        writeln!(out).unwrap();
        writeln!(out).unwrap();
        writeln!(out, "## CPU / memory energy split (joules, absolute)").unwrap();
        for row in &self.rows {
            for rep in &row.reports {
                writeln!(out, "  {}", rep.summary()).unwrap();
            }
        }
        out
    }
}

/// Run the Fig. 8 experiment on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale, seed: u64, aequitas_slice_s: f64) -> Fig8 {
    run_with(&Campaign::new(), ctx, scale, seed, aequitas_slice_s)
}

/// Run the Fig. 8 experiment: a {21 benchmarks} × {6 schedulers} spec grid
/// executed by `campaign`, re-chunked into per-benchmark rows.
pub fn run_with(
    campaign: &Campaign,
    ctx: &ExperimentContext,
    scale: Scale,
    seed: u64,
    aequitas_slice_s: f64,
) -> Fig8 {
    let kinds = SchedulerKind::fig8_set(aequitas_slice_s);
    let specs = SpecGrid::new()
        .workloads(fig8_suite(scale).into_iter().map(Workload::from))
        .schedulers(kinds.iter().copied())
        .seeds([seed])
        .build();
    let (schedulers, rows) = rows_by_workload(campaign.run(ctx, specs), kinds.len());
    let rows = rows
        .into_iter()
        .map(|(label, reports)| Fig8Row { label, reports })
        .collect();
    Fig8 { schedulers, rows }
}
