//! Regenerates Fig. 8: total energy across schedulers, normalized to GRWS.
//!
//! Usage: `fig8_energy [--full | --scale N] [--seed S] [--threads T]`

use joss_experiments::{fig8, Campaign, ExperimentContext};
use joss_sweep::default_threads;
use joss_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Divided(100);
    let mut seed = 42u64;
    let mut threads = default_threads();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--scale" => {
                i += 1;
                scale = Scale::Divided(args[i].parse().expect("scale divisor"));
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("seed");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("thread count");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    // Scaled-down runs have short makespans; shrink Aequitas' slice
    // proportionally so its time-slicing still engages.
    let slice = match scale {
        Scale::Full => 1.0,
        Scale::Divided(d) => (1.0 / d as f64).max(0.005),
    };
    let ctx = ExperimentContext::new(seed);
    let result = fig8::run_with(&Campaign::with_threads(threads), &ctx, scale, seed, slice);
    print!("{}", result.render());
}
