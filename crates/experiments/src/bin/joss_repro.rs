//! Umbrella reproduction binary: runs every experiment of the paper and
//! writes the outputs under `results/`.
//!
//! Usage: `joss_repro [--full | --scale N] [--seed S] [--threads T] [--out DIR]`

use joss_experiments::{
    fig1, fig10, fig2, fig5, fig8, fig9, overhead, table1, Campaign, ExperimentContext,
};
use joss_sweep::default_threads;
use joss_workloads::Scale;
use std::fs;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Divided(50);
    let mut seed = 42u64;
    let mut threads = default_threads();
    let mut out_dir = PathBuf::from("results");
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--scale" => {
                i += 1;
                scale = Scale::Divided(args[i].parse().expect("scale divisor"));
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("seed");
            }
            "--threads" => {
                i += 1;
                threads = args[i].parse().expect("thread count");
            }
            "--out" => {
                i += 1;
                out_dir = PathBuf::from(&args[i]);
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    fs::create_dir_all(&out_dir).expect("create results dir");
    let slice = match scale {
        Scale::Full => 1.0,
        Scale::Divided(d) => (1.0 / d as f64).max(0.005),
    };
    let campaign = Campaign::with_threads(threads);

    eprintln!("[joss_repro] characterizing platform + training models...");
    let ctx = ExperimentContext::new(seed);

    let save = |name: &str, body: String| {
        let path = out_dir.join(name);
        fs::write(&path, &body).expect("write result");
        println!("==== {name} ====\n{body}");
    };

    eprintln!("[joss_repro] Table 1...");
    save("table1.txt", table1::run_with(threads).render());
    eprintln!("[joss_repro] Fig. 1...");
    save(
        "fig1.txt",
        fig1::run_with(&campaign, &ctx, Scale::Divided(100), seed).render(&ctx),
    );
    eprintln!("[joss_repro] Fig. 2...");
    save(
        "fig2.txt",
        fig2::run_with(&campaign, &ctx, Scale::Divided(100), seed).render(&ctx),
    );
    eprintln!("[joss_repro] Fig. 5...");
    save("fig5.txt", fig5::run_with(threads, &ctx).render());
    eprintln!("[joss_repro] Fig. 8 (21 benchmarks x 6 schedulers, {threads} threads)...");
    save(
        "fig8.txt",
        fig8::run_with(&campaign, &ctx, scale, seed, slice).render(),
    );
    eprintln!("[joss_repro] Fig. 9 (constraints)...");
    save(
        "fig9.txt",
        fig9::run_with(&campaign, &ctx, scale, seed).render(),
    );
    eprintln!("[joss_repro] Fig. 10 (model accuracy)...");
    save(
        "fig10.txt",
        fig10::run_with(threads, &ctx, Scale::Divided(200)).render(),
    );
    eprintln!("[joss_repro] §7.4 (overheads)...");
    save(
        "sec74_overhead.txt",
        overhead::run_with(threads, &ctx, Scale::Divided(200)).render(),
    );
    eprintln!("[joss_repro] done; outputs in {}", out_dir.display());
}
