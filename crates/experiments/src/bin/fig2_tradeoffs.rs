//! Regenerates Fig. 2: energy vs execution-time trade-off curves.

use joss_experiments::{fig2, ExperimentContext};
use joss_workloads::Scale;

fn main() {
    let ctx = ExperimentContext::new(42);
    let result = fig2::run(&ctx, Scale::Divided(100), 42);
    print!("{}", result.render(&ctx));
}
