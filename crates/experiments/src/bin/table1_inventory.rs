//! Regenerates Table 1: the benchmark inventory with generated task counts.

use joss_experiments::table1;

fn main() {
    print!("{}", table1::run().render());
}
