//! Regenerates Fig. 1: four configuration-selection scenarios for MM and MC.

use joss_experiments::{fig1, ExperimentContext};
use joss_workloads::Scale;

fn main() {
    let ctx = ExperimentContext::new(42);
    let result = fig1::run(&ctx, Scale::Divided(100), 42);
    print!("{}", result.render(&ctx));
}
