//! Regenerates Fig. 9: JOSS under performance constraints.
//!
//! Usage: `fig9_constraints [--full | --scale N] [--seed S]`

use joss_experiments::{fig9, ExperimentContext};
use joss_workloads::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = Scale::Divided(100);
    let mut seed = 42u64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--scale" => {
                i += 1;
                scale = Scale::Divided(args[i].parse().expect("scale divisor"));
            }
            "--seed" => {
                i += 1;
                seed = args[i].parse().expect("seed");
            }
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let ctx = ExperimentContext::new(seed);
    let result = fig9::run(&ctx, scale, seed);
    print!("{}", result.render());
}
