//! Regenerates Fig. 10: model prediction accuracy distributions.

use joss_experiments::{fig10, ExperimentContext};
use joss_workloads::Scale;

fn main() {
    let ctx = ExperimentContext::new(42);
    let result = fig10::run(&ctx, Scale::Divided(200));
    print!("{}", result.render());
}
