//! Regenerates Fig. 5: CPU/memory rail power of synthetic benchmarks on two
//! little cores across all frequency combinations.

use joss_experiments::{fig5, ExperimentContext};

fn main() {
    let ctx = ExperimentContext::new(42);
    let result = fig5::run(&ctx);
    print!("{}", result.render());
}
