//! Regenerates the §7.4 overhead analysis: steepest-descent vs exhaustive
//! search cost/quality and lookup-table storage.

use joss_experiments::{overhead, ExperimentContext};
use joss_workloads::Scale;

fn main() {
    let ctx = ExperimentContext::new(42);
    let result = overhead::run(&ctx, Scale::Divided(200));
    print!("{}", result.render());
}
