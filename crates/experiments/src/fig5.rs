//! Fig. 5 — CPU and memory rail power while running synthetic benchmarks of
//! three memory-boundness levels (2%, 36%, 72%) on two little (A57) cores,
//! across all 15 `<fC, fM>` combinations.

use joss_models::Profiler;
use joss_platform::CoreType;
use joss_sweep::{default_threads, ordered_parallel_map, ExperimentContext};
use std::fmt::Write as _;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Memory-boundness label (fraction, e.g. 0.02).
    pub mb: f64,
    /// Core frequency, GHz.
    pub fc_ghz: f64,
    /// Memory frequency, GHz.
    pub fm_ghz: f64,
    /// CPU rail power (dynamic + cluster idle), watts.
    pub cpu_w: f64,
    /// Memory rail power (dynamic + background), watts.
    pub mem_w: f64,
}

/// The full Fig. 5 result.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// All measured points.
    pub points: Vec<Fig5Point>,
}

/// The paper's three MB levels.
pub const MB_LEVELS: [f64; 3] = [0.02, 0.36, 0.72];

/// Run the Fig. 5 experiment on all available cores.
pub fn run(ctx: &ExperimentContext) -> Fig5 {
    run_with(default_threads(), ctx)
}

/// Run the Fig. 5 experiment: every `(MB level, fC, fM)` measurement point
/// is an independent unit, fanned out over `threads` workers in the
/// paper's point order.
pub fn run_with(threads: usize, ctx: &ExperimentContext) -> Fig5 {
    let profiler = Profiler::new(&ctx.machine);
    let benches = profiler.benches();
    // Point grid: per MB level, fC descending within each fM group,
    // matching the paper's x-axis.
    let mut grid = Vec::new();
    for &mb in &MB_LEVELS {
        // Synthetic index whose compute fraction matches 1 - MB.
        let idx = (((1.0 - mb) / 0.025).round() as usize).min(benches.len() - 1);
        for fm in (0..ctx.space.mem_freqs_ghz.len()).rev() {
            for fc in (0..ctx.space.cpu_freqs_ghz.len()).rev() {
                grid.push((mb, idx, fm, fc));
            }
        }
    }
    let points = ordered_parallel_map(threads, &grid, |_, &(mb, idx, fm, fc)| {
        let fc_ghz = ctx.space.cpu_freqs_ghz[fc];
        let fm_ghz = ctx.space.mem_freqs_ghz[fm];
        let (_, cpu_dyn, mem_dyn) =
            profiler.measure(idx, &benches[idx], CoreType::Little, 2, fc_ghz, fm_ghz);
        Fig5Point {
            mb,
            fc_ghz,
            fm_ghz,
            cpu_w: cpu_dyn + ctx.machine.cluster_idle_w(CoreType::Little, fc_ghz),
            mem_w: mem_dyn + ctx.machine.mem_idle_w(fm_ghz),
        }
    });
    Fig5 { points }
}

impl Fig5 {
    /// Text rendering: two tables (CPU rail, memory rail) like Fig. 5a/5b.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "# Fig. 5 — rail power of synthetics on A57 x 2 cores").unwrap();
        for (name, pick) in [
            ("(a) CPU power [W]", 0usize),
            ("(b) Memory power [W]", 1usize),
        ] {
            writeln!(out, "\n## {name}").unwrap();
            write!(out, "{:<16}", "<fC, fM>").unwrap();
            for &mb in &MB_LEVELS {
                write!(out, " {:>10}", format!("MB={:.0}%", mb * 100.0)).unwrap();
            }
            writeln!(out).unwrap();
            let per_level = self.points.len() / MB_LEVELS.len();
            for i in 0..per_level {
                let p0 = &self.points[i];
                write!(
                    out,
                    "{:<16}",
                    format!("<{:.2}, {:.2}>", p0.fc_ghz, p0.fm_ghz)
                )
                .unwrap();
                for l in 0..MB_LEVELS.len() {
                    let p = &self.points[l * per_level + i];
                    let v = if pick == 0 { p.cpu_w } else { p.mem_w };
                    write!(out, " {v:>10.3}").unwrap();
                }
                writeln!(out).unwrap();
            }
        }
        out
    }
}
