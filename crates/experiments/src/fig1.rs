//! Fig. 1 — motivation: total energy under four configuration-selection
//! scenarios for MM (compute-bound) and MC (memory-bound) at dop = 1.
//!
//! 1. least **CPU** energy over `<TC,NC,fC>` with `fM` fixed at max
//!    (the state of the art, STEER-style);
//! 2. least **total** energy over `<TC,NC,fC>`, `fM` still fixed;
//! 3. scenario 1's `<TC,NC,fC>` kept, then `fM` tuned alone (orthogonal
//!    scaling);
//! 4. least total energy over the full joint `<TC,NC,fC,fM>` space (JOSS).
//!
//! Each candidate is evaluated by *running the whole benchmark* pinned at
//! that configuration and measuring rail energies, exactly like the paper's
//! exhaustive platform runs.

use joss_dag::TaskGraph;
use joss_platform::{EnergyAccount, KnobConfig};
use joss_sweep::{Campaign, EngineSpec, ExperimentContext, RunSpec, SchedulerKind, Workload};
use joss_workloads::{matcopy, matmul, Scale};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Result of one scenario on one benchmark.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// Scenario number (1..=4).
    pub scenario: usize,
    /// Selected configuration.
    pub config: KnobConfig,
    /// Measured energy at that configuration.
    pub energy: EnergyAccount,
}

/// Fig. 1 results for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig1Bench {
    /// Benchmark label (MM / MC).
    pub label: String,
    /// The four scenarios.
    pub scenarios: Vec<ScenarioResult>,
}

/// The full Fig. 1 result.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// Per-benchmark results.
    pub benches: Vec<Fig1Bench>,
}

/// Sweep the whole configuration space for a benchmark on all available
/// cores, measuring energy at every pinned configuration.
pub fn sweep(
    ctx: &ExperimentContext,
    graph: &TaskGraph,
    seed: u64,
) -> HashMap<KnobConfig, EnergyAccount> {
    sweep_with(&Campaign::new(), ctx, graph, seed)
}

/// Exhaustive pinned-configuration sweep as a campaign: one
/// [`SchedulerKind::Fixed`] spec per `<TC,NC,fC,fM>` point, all sharing one
/// graph, fanned out by `campaign`.
pub fn sweep_with(
    campaign: &Campaign,
    ctx: &ExperimentContext,
    graph: &TaskGraph,
    seed: u64,
) -> HashMap<KnobConfig, EnergyAccount> {
    let shared = Arc::new(graph.clone());
    let configs: Vec<KnobConfig> = ctx.space.iter_all().collect();
    let specs = configs
        .iter()
        .map(|&cfg| RunSpec {
            workload: Workload::shared(shared.name().to_string(), shared.clone()),
            scheduler: SchedulerKind::Fixed(cfg),
            engine: EngineSpec::seeded(seed),
        })
        .collect();
    let records = campaign.run(ctx, specs);
    configs
        .into_iter()
        .zip(records)
        .map(|(cfg, rec)| (cfg, rec.report.energy))
        .collect()
}

fn argmin_by<F: Fn(&EnergyAccount) -> f64>(
    sweep: &HashMap<KnobConfig, EnergyAccount>,
    filter: impl Fn(&KnobConfig) -> bool,
    key: F,
) -> (KnobConfig, EnergyAccount) {
    let (cfg, acc) = sweep
        .iter()
        .filter(|(c, _)| filter(c))
        .min_by(|a, b| key(a.1).partial_cmp(&key(b.1)).expect("finite energies"))
        .expect("non-empty sweep");
    (*cfg, *acc)
}

fn scenarios(
    ctx: &ExperimentContext,
    sweep: &HashMap<KnobConfig, EnergyAccount>,
) -> Vec<ScenarioResult> {
    let fm_max = ctx.space.fm_max();
    // Scenario 1: least CPU energy, fM pinned at max.
    let (c1, e1) = argmin_by(sweep, |c| c.fm == fm_max, |e| e.cpu_j);
    // Scenario 2: least total energy, fM pinned at max.
    let (c2, e2) = argmin_by(sweep, |c| c.fm == fm_max, |e| e.total_j());
    // Scenario 3: scenario 1's <TC,NC,fC>, fM tuned orthogonally.
    let (c3, e3) = argmin_by(
        sweep,
        |c| c.tc == c1.tc && c.nc == c1.nc && c.fc == c1.fc,
        |e| e.total_j(),
    );
    // Scenario 4: joint search over all four knobs.
    let (c4, e4) = argmin_by(sweep, |_| true, |e| e.total_j());
    vec![
        ScenarioResult {
            scenario: 1,
            config: c1,
            energy: e1,
        },
        ScenarioResult {
            scenario: 2,
            config: c2,
            energy: e2,
        },
        ScenarioResult {
            scenario: 3,
            config: c3,
            energy: e3,
        },
        ScenarioResult {
            scenario: 4,
            config: c4,
            energy: e4,
        },
    ]
}

/// Run the Fig. 1 experiment on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig1 {
    run_with(&Campaign::new(), ctx, scale, seed)
}

/// Run the Fig. 1 experiment with an explicit campaign executor.
pub fn run_with(campaign: &Campaign, ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig1 {
    let mut benches = Vec::new();
    for graph in [
        matmul::matmul(256, 1, scale),
        matcopy::matcopy(4096, 1, scale),
    ] {
        let sw = sweep_with(campaign, ctx, &graph, seed);
        benches.push(Fig1Bench {
            label: graph.name().to_string(),
            scenarios: scenarios(ctx, &sw),
        });
    }
    Fig1 { benches }
}

impl Fig1 {
    /// Text rendering of the figure.
    pub fn render(&self, ctx: &ExperimentContext) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Fig. 1 — total energy under four config-selection scenarios"
        )
        .unwrap();
        for b in &self.benches {
            writeln!(out, "\n## {}", b.label).unwrap();
            writeln!(
                out,
                "{:<10} {:<28} {:>10} {:>10} {:>10}",
                "scenario", "config", "cpu [J]", "mem [J]", "total [J]"
            )
            .unwrap();
            for s in &b.scenarios {
                writeln!(
                    out,
                    "{:<10} {:<28} {:>10.3} {:>10.3} {:>10.3}",
                    s.scenario,
                    ctx.space.label(s.config),
                    s.energy.cpu_j,
                    s.energy.mem_j,
                    s.energy.total_j()
                )
                .unwrap();
            }
            let e1 = b.scenarios[0].energy.total_j();
            let e2 = b.scenarios[1].energy.total_j();
            let e3 = b.scenarios[2].energy.total_j();
            let e4 = b.scenarios[3].energy.total_j();
            writeln!(
                out,
                "scenario 2 vs 1: {:+.1}%   scenario 4 vs 3: {:+.1}%",
                100.0 * (e2 - e1) / e1,
                100.0 * (e4 - e3) / e3
            )
            .unwrap();
        }
        out
    }
}
