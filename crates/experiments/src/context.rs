//! Shared experiment context: the platform and its one-time
//! characterization, reused across all experiments.

use joss_models::{ModelSet, TrainingConfig};
use joss_platform::{ConfigSpace, MachineModel};
use std::sync::Arc;

/// Platform + trained models, built once per experiment session.
pub struct ExperimentContext {
    /// The simulated TX2.
    pub machine: MachineModel,
    /// Its configuration space.
    pub space: ConfigSpace,
    /// The trained MPR model set (install-time characterization).
    pub models: Arc<ModelSet>,
}

impl ExperimentContext {
    /// Build with the paper's 10 profiling repetitions.
    pub fn new(seed: u64) -> Self {
        Self::with_reps(seed, 10)
    }

    /// Build with reduced profiling repetitions (fast tests).
    pub fn with_reps(seed: u64, reps: u32) -> Self {
        let machine = MachineModel::tx2(seed);
        let space = ConfigSpace::from_spec(&machine.spec);
        let mut cfg = TrainingConfig::tx2_default(&space);
        cfg.reps = reps;
        let models = Arc::new(ModelSet::train(&machine, cfg));
        ExperimentContext {
            machine,
            space,
            models,
        }
    }
}
