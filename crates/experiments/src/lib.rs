//! # joss-experiments — regenerating every table and figure of the paper
//!
//! One module per experiment, each with a `run(...)` entry returning a
//! structured result and a `render()` producing the text table/series the
//! paper reports. Binaries under `src/bin/` wrap these for the command
//! line; `joss_repro` runs the full set.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Fig. 1 — motivation: four config-selection scenarios |
//! | [`fig2`] | Fig. 2 — energy/performance trade-off curves |
//! | [`fig5`] | Fig. 5 — CPU/memory power of synthetics on A57 x 2 |
//! | [`table1`] | Table 1 — benchmark inventory |
//! | [`fig8`] | Fig. 8 — total energy across schedulers |
//! | [`fig9`] | Fig. 9 — energy under performance constraints |
//! | [`fig10`] | Fig. 10 — model accuracy distributions |
//! | [`overhead`] | §7.4 — search and storage overhead analysis |

pub mod context;
pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod overhead;
pub mod runner;
pub mod table1;

pub use context::ExperimentContext;
pub use runner::{run_one, SchedulerKind};
