//! # joss-experiments — regenerating every table and figure of the paper
//!
//! One module per experiment, each with a `run(...)` entry returning a
//! structured result and a `render()` producing the text table/series the
//! paper reports. Binaries under `src/bin/` wrap these for the command
//! line; `joss_repro` runs the full set.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Fig. 1 — motivation: four config-selection scenarios |
//! | [`fig2`] | Fig. 2 — energy/performance trade-off curves |
//! | [`fig5`] | Fig. 5 — CPU/memory power of synthetics on A57 x 2 |
//! | [`table1`] | Table 1 — benchmark inventory |
//! | [`fig8`] | Fig. 8 — total energy across schedulers |
//! | [`fig9`] | Fig. 9 — energy under performance constraints |
//! | [`fig10`] | Fig. 10 — model accuracy distributions |
//! | [`overhead`] | §7.4 — search and storage overhead analysis |
//!
//! Every module routes its runs through the `joss-sweep` campaign
//! subsystem: engine-driven experiments build declarative
//! [`SpecGrid`](joss_sweep::SpecGrid)s and post-process the ordered
//! [`RunRecord`](joss_sweep::RunRecord)s; analysis-style experiments fan
//! their independent units out with
//! [`ordered_parallel_map`](joss_sweep::ordered_parallel_map). Each `run()`
//! uses one worker per available core; the `run_with()` variants take an
//! explicit [`Campaign`](joss_sweep::Campaign) or thread count. Results are
//! deterministic and identical for any worker count.

pub mod fig1;
pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig8;
pub mod fig9;
pub mod overhead;
pub mod table1;

pub use joss_sweep::{run_one, Campaign, ExperimentContext, SchedulerKind};
