//! Scheduler factory and single-run helper.

use crate::context::ExperimentContext;
use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::metrics::RunReport;
use joss_core::sched::{AequitasSched, EraseSched, GrwsSched, ModelSched, Scheduler};
use joss_dag::TaskGraph;
use joss_platform::Duration;

/// Which scheduler to run (the paper's six, plus the Fig. 9 variants).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchedulerKind {
    /// Greedy random work stealing (baseline).
    Grws,
    /// ERASE comparator.
    Erase,
    /// Aequitas comparator. The field is the DVFS time-slice in seconds
    /// (1.0 in the paper; smaller for scaled-down runs).
    Aequitas(f64),
    /// STEER comparator.
    Steer,
    /// JOSS (minimum total energy, all four knobs).
    Joss,
    /// JOSS with the memory-DVFS knob removed.
    JossNoMemDvfs,
    /// JOSS under a per-task speedup constraint.
    JossSpeedup(f64),
    /// JOSS maximizing per-task performance.
    JossMaxPerf,
}

impl SchedulerKind {
    /// The six Fig. 8 schedulers in the paper's legend order.
    pub fn fig8_set(aequitas_slice_s: f64) -> Vec<SchedulerKind> {
        vec![
            SchedulerKind::Grws,
            SchedulerKind::Erase,
            SchedulerKind::Aequitas(aequitas_slice_s),
            SchedulerKind::Steer,
            SchedulerKind::Joss,
            SchedulerKind::JossNoMemDvfs,
        ]
    }

    /// Instantiate the scheduler.
    pub fn build(self, ctx: &ExperimentContext) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Grws => Box::new(GrwsSched::new()),
            SchedulerKind::Erase => Box::new(EraseSched::new(ctx.models.clone())),
            SchedulerKind::Aequitas(slice) => {
                Box::new(AequitasSched::new().with_slice(Duration::from_secs_f64(slice)))
            }
            SchedulerKind::Steer => Box::new(ModelSched::steer(ctx.models.clone())),
            SchedulerKind::Joss => Box::new(ModelSched::joss(ctx.models.clone())),
            SchedulerKind::JossNoMemDvfs => {
                Box::new(ModelSched::joss_no_mem_dvfs(ctx.models.clone()))
            }
            SchedulerKind::JossSpeedup(s) => {
                Box::new(ModelSched::joss_with_speedup(ctx.models.clone(), s))
            }
            SchedulerKind::JossMaxPerf => Box::new(ModelSched::joss_maxp(ctx.models.clone())),
        }
    }
}

/// Run one benchmark under one scheduler.
pub fn run_one(
    ctx: &ExperimentContext,
    kind: SchedulerKind,
    graph: &TaskGraph,
    seed: u64,
) -> RunReport {
    let mut sched = kind.build(ctx);
    let engine = EngineConfig {
        seed,
        ..EngineConfig::default()
    };
    SimEngine::run(&ctx.machine, graph, sched.as_mut(), engine)
}
