//! Fig. 2 — energy/performance trade-off exploration: walking from the
//! minimum-energy configuration toward the fastest one and recording the
//! measured energy and execution time at each step.

use crate::fig1::sweep_with;
use joss_platform::{EnergyAccount, FreqIndex, KnobConfig, NcIndex};
use joss_sweep::{Campaign, ExperimentContext};
use joss_workloads::{matcopy, matmul, Scale};
use std::fmt::Write as _;

/// One point of a trade-off curve.
#[derive(Debug, Clone)]
pub struct TradeoffPoint {
    /// Configuration.
    pub config: KnobConfig,
    /// Measured energy/makespan at that configuration.
    pub energy: EnergyAccount,
}

/// Trade-off curve for one benchmark.
#[derive(Debug, Clone)]
pub struct Fig2Bench {
    /// Benchmark label.
    pub label: String,
    /// Points from least-energy to fastest.
    pub points: Vec<TradeoffPoint>,
}

/// The full Fig. 2 result.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Per-benchmark curves.
    pub benches: Vec<Fig2Bench>,
}

/// Run the Fig. 2 experiment on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig2 {
    run_with(&Campaign::new(), ctx, scale, seed)
}

/// Run the Fig. 2 experiment with an explicit campaign executor (the
/// underlying exhaustive sweep is a [`SchedulerKind::Fixed`] campaign).
///
/// [`SchedulerKind::Fixed`]: joss_sweep::SchedulerKind::Fixed
pub fn run_with(campaign: &Campaign, ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig2 {
    let mut benches = Vec::new();
    for graph in [
        matmul::matmul(256, 1, scale),
        matcopy::matcopy(4096, 1, scale),
    ] {
        let sw = sweep_with(campaign, ctx, &graph, seed);
        // Start from the joint minimum-energy configuration.
        let (start, _) = sw
            .iter()
            .min_by(|a, b| a.1.total_j().partial_cmp(&b.1.total_j()).expect("finite"))
            .expect("non-empty sweep");
        // Walk toward the fastest configuration: raise fC step by step, then
        // fM, then NC — the paper's Fig. 2 series.
        let mut series = vec![*start];
        let mut cur = *start;
        while cur.fc < ctx.space.fc_max() {
            cur = KnobConfig {
                fc: FreqIndex(cur.fc.0 + 1),
                ..cur
            };
            series.push(cur);
        }
        while cur.fm < ctx.space.fm_max() {
            cur = KnobConfig {
                fm: FreqIndex(cur.fm.0 + 1),
                ..cur
            };
            series.push(cur);
        }
        while cur.nc.0 + 1 < ctx.space.n_nc(cur.tc) {
            cur = KnobConfig {
                nc: NcIndex(cur.nc.0 + 1),
                ..cur
            };
            series.push(cur);
        }
        let points = series
            .into_iter()
            .map(|config| TradeoffPoint {
                config,
                energy: sw[&config],
            })
            .collect();
        benches.push(Fig2Bench {
            label: graph.name().to_string(),
            points,
        });
    }
    Fig2 { benches }
}

impl Fig2 {
    /// Text rendering of the figure.
    pub fn render(&self, ctx: &ExperimentContext) -> String {
        let mut out = String::new();
        writeln!(out, "# Fig. 2 — energy vs execution-time trade-off curves").unwrap();
        for b in &self.benches {
            writeln!(out, "\n## {}", b.label).unwrap();
            writeln!(
                out,
                "{:<28} {:>12} {:>12} {:>9} {:>9}",
                "config", "energy [J]", "time [s]", "E/E0", "T0/T"
            )
            .unwrap();
            let e0 = b.points[0].energy.total_j();
            let t0 = b.points[0].energy.makespan_s;
            for p in &b.points {
                writeln!(
                    out,
                    "{:<28} {:>12.3} {:>12.4} {:>9.2} {:>9.2}",
                    ctx.space.label(p.config),
                    p.energy.total_j(),
                    p.energy.makespan_s,
                    p.energy.total_j() / e0,
                    t0 / p.energy.makespan_s
                )
                .unwrap();
            }
        }
        out
    }
}
