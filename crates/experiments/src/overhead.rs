//! §7.4 — overhead analysis: steepest-descent vs exhaustive search cost and
//! quality, and the per-kernel lookup-table storage footprint, on the TX2
//! and on a larger hypothetical platform.

use joss_models::{
    exhaustive_search, steepest_descent_search, EnergyEstimator, ModelSet, Objective,
    TrainingConfig,
};
use joss_platform::{ExecContext, MachineModel, NoiseModel, PlatformSpec};
use joss_sweep::{default_threads, ordered_parallel_map, ExperimentContext};
use joss_workloads::{fig8_suite, Scale};
use std::fmt::Write as _;

/// Comparison of the two searches on one kernel.
#[derive(Debug, Clone)]
pub struct SearchComparison {
    /// Kernel name (with benchmark prefix).
    pub kernel: String,
    /// Exhaustive evaluations.
    pub ex_evals: u64,
    /// Steepest-descent evaluations.
    pub sd_evals: u64,
    /// Exhaustive minimum energy (J).
    pub ex_energy: f64,
    /// Steepest-descent minimum energy (J).
    pub sd_energy: f64,
    /// Worst-case energy in the space (J), for reduction-ratio math.
    pub worst_energy: f64,
}

impl SearchComparison {
    /// Fraction of the exhaustive search's energy reduction that steepest
    /// descent achieves (the paper reports 97%).
    pub fn reduction_ratio(&self) -> f64 {
        let ex_red = self.worst_energy - self.ex_energy;
        let sd_red = self.worst_energy - self.sd_energy;
        if ex_red <= 0.0 {
            1.0
        } else {
            (sd_red / ex_red).clamp(0.0, 1.0)
        }
    }
}

/// The full §7.4 result.
#[derive(Debug, Clone)]
pub struct Overhead {
    /// Per-kernel comparisons on the TX2-like platform.
    pub tx2: Vec<SearchComparison>,
    /// Comparisons on the larger platform (synthetic kernels).
    pub large: Vec<SearchComparison>,
    /// Storage entries per kernel on the TX2 (3 tables).
    pub tx2_storage_entries: usize,
    /// Storage entries per kernel on the large platform.
    pub large_storage_entries: usize,
}

fn compare_kernel(
    models: &ModelSet,
    samples: &[Option<(f64, f64)>],
    max_width: usize,
    kernel: String,
) -> SearchComparison {
    let tables = models.build_kernel_tables(samples);
    let est = EnergyEstimator {
        space: &models.space,
        tables: &tables,
        idle: &models.idle,
        objective: Objective::TotalEnergy,
        concurrency: 2.0,
        max_width,
    };
    let ex = exhaustive_search(&est, true);
    let sd = steepest_descent_search(&est, true);
    let worst = models
        .space
        .iter_all()
        .filter(|c| models.space.nc_count(c.tc, c.nc) <= max_width)
        .map(|c| est.energy_j(c))
        .fold(f64::NEG_INFINITY, f64::max);
    SearchComparison {
        kernel,
        ex_evals: ex.stats.evaluations,
        sd_evals: sd.stats.evaluations,
        ex_energy: ex.energy_j,
        sd_energy: sd.energy_j,
        worst_energy: worst,
    }
}

/// Sample a kernel shape cleanly on a machine for table building.
fn clean_samples(
    machine: &MachineModel,
    models: &ModelSet,
    shape: &joss_platform::TaskShape,
    max_width: usize,
) -> Vec<Option<(f64, f64)>> {
    let ectx = ExecContext::alone();
    models
        .indexer()
        .iter()
        .map(|(tc, nc)| {
            let width = models.space.nc_count(tc, nc);
            if width > max_width {
                return None;
            }
            Some((
                machine.clean_time_s(
                    shape,
                    tc,
                    width,
                    models.fc_ref_ghz(),
                    models.fm_ref_ghz(),
                    &ectx,
                ),
                machine.clean_time_s(
                    shape,
                    tc,
                    width,
                    models.fc_alt_ghz(),
                    models.fm_ref_ghz(),
                    &ectx,
                ),
            ))
        })
        .collect()
}

/// Run the §7.4 analysis on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale) -> Overhead {
    run_with(default_threads(), ctx, scale)
}

/// Run the §7.4 analysis: each kernel's search comparison is independent,
/// so kernels fan out over `threads` workers in suite order.
pub fn run_with(threads: usize, ctx: &ExperimentContext, scale: Scale) -> Overhead {
    // TX2: every kernel of the evaluation suite.
    let units: Vec<(String, joss_platform::TaskShape, usize)> = fig8_suite(scale)
        .iter()
        .flat_map(|bench| {
            bench.graph.kernels().iter().map(|kernel| {
                (
                    format!("{}/{}", bench.label, kernel.name),
                    kernel.shape,
                    kernel.max_width,
                )
            })
        })
        .collect();
    let tx2: Vec<SearchComparison> =
        ordered_parallel_map(threads, &units, |_, (label, shape, max_width)| {
            let samples = clean_samples(&ctx.machine, &ctx.models, shape, *max_width);
            if samples.iter().all(|s| s.is_none()) {
                return None;
            }
            Some(compare_kernel(
                &ctx.models,
                &samples,
                *max_width,
                label.clone(),
            ))
        })
        .into_iter()
        .flatten()
        .collect();
    let tx2_storage_entries = ctx
        .models
        .build_kernel_tables(&clean_samples(
            &ctx.machine,
            &ctx.models,
            &joss_platform::TaskShape::new(0.01, 0.001),
            usize::MAX,
        ))
        .storage_entries();

    // Larger platform: characterize it and compare on representative shapes.
    let large_machine = MachineModel {
        spec: PlatformSpec::large(),
        noise: NoiseModel::calibrated(7),
        params: Default::default(),
    };
    let large_space = joss_platform::ConfigSpace::from_spec(&large_machine.spec);
    let mut tcfg = TrainingConfig::tx2_default(&large_space);
    tcfg.reps = 2;
    let large_models = ModelSet::train(&large_machine, tcfg);
    let large_units = [
        ("compute", 0.05, 0.001),
        ("mixed", 0.02, 0.02),
        ("streaming", 0.002, 0.2),
    ];
    let large = ordered_parallel_map(threads, &large_units, |_, &(name, w, b)| {
        let shape = joss_platform::TaskShape::new(w, b);
        let samples = clean_samples(&large_machine, &large_models, &shape, usize::MAX);
        compare_kernel(&large_models, &samples, usize::MAX, name.to_string())
    });
    let large_storage_entries = large_models
        .build_kernel_tables(&clean_samples(
            &large_machine,
            &large_models,
            &joss_platform::TaskShape::new(0.01, 0.001),
            usize::MAX,
        ))
        .storage_entries();

    Overhead {
        tx2,
        large,
        tx2_storage_entries,
        large_storage_entries,
    }
}

impl Overhead {
    /// Mean evaluation-count reduction of steepest descent on the TX2.
    pub fn mean_eval_reduction(&self) -> f64 {
        let mut acc = 0.0;
        for c in &self.tx2 {
            acc += 1.0 - c.sd_evals as f64 / c.ex_evals as f64;
        }
        acc / self.tx2.len() as f64
    }

    /// Mean energy-reduction ratio achieved by steepest descent on the TX2.
    pub fn mean_reduction_ratio(&self) -> f64 {
        self.tx2.iter().map(|c| c.reduction_ratio()).sum::<f64>() / self.tx2.len() as f64
    }

    /// Text rendering of the analysis.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(out, "# §7.4 — search and storage overhead analysis").unwrap();
        writeln!(
            out,
            "\n## TX2-like platform ({} kernels from the evaluation suite)",
            self.tx2.len()
        )
        .unwrap();
        writeln!(
            out,
            "{:<26} {:>9} {:>9} {:>10} {:>10} {:>9}",
            "kernel", "ex evals", "sd evals", "ex E [J]", "sd E [J]", "red.ratio"
        )
        .unwrap();
        for c in &self.tx2 {
            writeln!(
                out,
                "{:<26} {:>9} {:>9} {:>10.5} {:>10.5} {:>9.3}",
                c.kernel,
                c.ex_evals,
                c.sd_evals,
                c.ex_energy,
                c.sd_energy,
                c.reduction_ratio()
            )
            .unwrap();
        }
        writeln!(
            out,
            "\nmean evaluation reduction: {:.1}% (paper: ~70%)",
            100.0 * self.mean_eval_reduction()
        )
        .unwrap();
        writeln!(
            out,
            "mean energy-reduction ratio vs exhaustive: {:.1}% (paper: ~97%)",
            100.0 * self.mean_reduction_ratio()
        )
        .unwrap();
        writeln!(
            out,
            "lookup-table storage: {} entries/kernel (3 tables x tcnc x fC x fM)",
            self.tx2_storage_entries
        )
        .unwrap();
        writeln!(out, "\n## Larger platform (8+16 cores, 8 fC x 5 fM)").unwrap();
        for c in &self.large {
            writeln!(
                out,
                "{:<26} {:>9} {:>9}   eval reduction {:>5.1}%  red.ratio {:.3}",
                c.kernel,
                c.ex_evals,
                c.sd_evals,
                100.0 * (1.0 - c.sd_evals as f64 / c.ex_evals as f64),
                c.reduction_ratio()
            )
            .unwrap();
        }
        writeln!(
            out,
            "storage: {} entries/kernel",
            self.large_storage_entries
        )
        .unwrap();
        out
    }
}
