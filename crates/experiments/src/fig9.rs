//! Fig. 9 — reducing total energy under user-specified performance
//! constraints: JOSS+1.2X, +1.4X, +1.8X and MAXP, with energy and execution
//! time normalized to unconstrained JOSS.

use joss_core::metrics::RunReport;
use joss_sweep::{
    rows_by_workload, Campaign, ExperimentContext, SchedulerKind, SpecGrid, Workload,
};
use joss_workloads::{fig9_suite, Scale};
use std::fmt::Write as _;

/// One benchmark's reports across constraint settings.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark label.
    pub label: String,
    /// Reports in the order: JOSS, +1.2X, +1.4X, +1.8X, +MAXP.
    pub reports: Vec<RunReport>,
}

/// The full Fig. 9 result.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// Scheduler names in column order.
    pub schedulers: Vec<String>,
    /// Per-benchmark rows.
    pub rows: Vec<Fig9Row>,
}

/// The constraint settings of the figure.
pub fn kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::Joss,
        SchedulerKind::JossSpeedup(1.2),
        SchedulerKind::JossSpeedup(1.4),
        SchedulerKind::JossSpeedup(1.8),
        SchedulerKind::JossMaxPerf,
    ]
}

/// Run the Fig. 9 experiment on all available cores.
pub fn run(ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig9 {
    run_with(&Campaign::new(), ctx, scale, seed)
}

/// Run the Fig. 9 experiment: a {21 benchmarks} × {5 constraint settings}
/// spec grid executed by `campaign`.
pub fn run_with(campaign: &Campaign, ctx: &ExperimentContext, scale: Scale, seed: u64) -> Fig9 {
    let kinds = kinds();
    let specs = SpecGrid::new()
        .workloads(fig9_suite(scale).into_iter().map(Workload::from))
        .schedulers(kinds.iter().copied())
        .seeds([seed])
        .build();
    let (schedulers, rows) = rows_by_workload(campaign.run(ctx, specs), kinds.len());
    let rows = rows
        .into_iter()
        .map(|(label, reports)| Fig9Row { label, reports })
        .collect();
    Fig9 { schedulers, rows }
}

impl Fig9 {
    /// Mean energy increase (vs JOSS) per constraint column.
    pub fn mean_energy_increase(&self) -> Vec<f64> {
        let n = self.schedulers.len();
        (0..n)
            .map(|s| {
                let mut acc = 0.0;
                for r in &self.rows {
                    acc += r.reports[s].total_j() / r.reports[0].total_j();
                }
                acc / self.rows.len() as f64 - 1.0
            })
            .collect()
    }

    /// Mean achieved speedup (vs JOSS makespan) per column.
    pub fn mean_speedup(&self) -> Vec<f64> {
        let n = self.schedulers.len();
        (0..n)
            .map(|s| {
                let mut acc = 0.0;
                for r in &self.rows {
                    acc += r.reports[0].energy.makespan_s / r.reports[s].energy.makespan_s;
                }
                acc / self.rows.len() as f64
            })
            .collect()
    }

    /// Text rendering of the figure.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "# Fig. 9 — energy & time under performance constraints (norm. to JOSS)"
        )
        .unwrap();
        write!(out, "{:<16}", "benchmark").unwrap();
        for s in &self.schedulers {
            let tag = s.replace("JOSS", "");
            let tag = if tag.is_empty() {
                "base".to_string()
            } else {
                tag
            };
            write!(
                out,
                " {:>11} {:>11}",
                format!("{tag} E"),
                format!("{tag} T")
            )
            .unwrap();
        }
        writeln!(out).unwrap();
        for row in &self.rows {
            write!(out, "{:<16}", row.label).unwrap();
            let e0 = row.reports[0].total_j();
            let t0 = row.reports[0].energy.makespan_s;
            for rep in &row.reports {
                write!(
                    out,
                    " {:>12.3} {:>11.3}",
                    rep.total_j() / e0,
                    rep.energy.makespan_s / t0
                )
                .unwrap();
            }
            writeln!(out).unwrap();
        }
        writeln!(out, "\nmean energy increase per target:").unwrap();
        for (s, d) in self.schedulers.iter().zip(self.mean_energy_increase()) {
            writeln!(out, "  {s:<14} {:+.1}%", d * 100.0).unwrap();
        }
        writeln!(out, "mean achieved speedup per target:").unwrap();
        for (s, v) in self.schedulers.iter().zip(self.mean_speedup()) {
            writeln!(out, "  {s:<14} {v:.2}x").unwrap();
        }
        out
    }
}
