//! Cross-crate integration tests: full runs of the platform + models +
//! runtime stack under every scheduler.

use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::{AequitasSched, EraseSched, FixedSched, GrwsSched, ModelSched};
use joss_experiments::ExperimentContext;
use joss_platform::{CoreType, Duration, FreqIndex, KnobConfig, NcIndex};
use joss_workloads::{matcopy, matmul, sparselu, Scale};

fn ctx() -> ExperimentContext {
    ExperimentContext::with_reps(42, 2)
}

#[test]
fn every_scheduler_completes_every_task() {
    let ctx = ctx();
    let graph = sparselu::sparselu(Scale::Divided(200));
    let n = graph.n_tasks();
    let mut scheds: Vec<Box<dyn joss_core::Scheduler>> = vec![
        Box::new(GrwsSched::new()),
        Box::new(EraseSched::new(ctx.models.clone())),
        Box::new(AequitasSched::new().with_slice(Duration::from_millis(20))),
        Box::new(ModelSched::steer(ctx.models.clone())),
        Box::new(ModelSched::joss(ctx.models.clone())),
        Box::new(ModelSched::joss_no_mem_dvfs(ctx.models.clone())),
        Box::new(ModelSched::joss_with_speedup(ctx.models.clone(), 1.4)),
        Box::new(ModelSched::joss_maxp(ctx.models.clone())),
    ];
    for sched in &mut scheds {
        let report = SimEngine::run(
            &ctx.machine,
            &graph,
            sched.as_mut(),
            EngineConfig::default(),
        );
        assert_eq!(report.tasks, n, "{} left tasks behind", report.scheduler);
        assert!(report.total_j() > 0.0);
        assert!(report.energy.makespan_s > 0.0);
    }
}

#[test]
fn runs_are_deterministic_for_a_seed() {
    let ctx = ctx();
    let graph = matmul::matmul(256, 4, Scale::Divided(200));
    let run = |seed: u64| {
        let mut sched = ModelSched::joss(ctx.models.clone());
        let cfg = EngineConfig {
            seed,
            ..EngineConfig::default()
        };
        SimEngine::run(&ctx.machine, &graph, &mut sched, cfg)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(
        a.total_j(),
        b.total_j(),
        "same seed must reproduce bit-identical energy"
    );
    assert_eq!(a.energy.makespan_s, b.energy.makespan_s);
    assert_eq!(a.steals, b.steals);
    let c = run(8);
    assert_ne!(
        (a.total_j(), a.steals),
        (c.total_j(), c.steals),
        "different seeds should differ somewhere"
    );
}

#[test]
fn joss_beats_grws_on_compute_and_memory_workloads() {
    let ctx = ctx();
    for graph in [
        matmul::matmul(256, 4, Scale::Divided(100)),
        matcopy::matcopy(4096, 4, Scale::Divided(100)),
    ] {
        let mut grws = GrwsSched::new();
        let base = SimEngine::run(&ctx.machine, &graph, &mut grws, EngineConfig::default());
        let mut joss = ModelSched::joss(ctx.models.clone());
        let opt = SimEngine::run(&ctx.machine, &graph, &mut joss, EngineConfig::default());
        assert!(
            opt.total_j() < base.total_j(),
            "{}: JOSS {} J vs GRWS {} J",
            graph.name(),
            opt.total_j(),
            base.total_j()
        );
    }
}

#[test]
fn joss_selects_low_memory_frequency_for_compute_bound_kernels() {
    // The §7.1 BMOD story: compute-intensive kernels should get fM below max.
    let ctx = ctx();
    let graph = matmul::matmul(512, 4, Scale::Divided(100));
    let mut joss = ModelSched::joss(ctx.models.clone());
    let report = SimEngine::run(&ctx.machine, &graph, &mut joss, EngineConfig::default());
    let cfg = report
        .selected_configs
        .get("mm_tile")
        .expect("mm_tile configured");
    assert!(
        cfg.fm < ctx.space.fm_max(),
        "compute-bound kernel should not need max memory frequency, got {}",
        ctx.space.label(*cfg)
    );
}

#[test]
fn no_mem_dvfs_variant_pins_memory_at_max() {
    let ctx = ctx();
    let graph = matmul::matmul(256, 4, Scale::Divided(100));
    let mut sched = ModelSched::joss_no_mem_dvfs(ctx.models.clone());
    let report = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
    for (k, cfg) in &report.selected_configs {
        assert_eq!(
            cfg.fm,
            ctx.space.fm_max(),
            "kernel {k} moved fM without the knob"
        );
    }
}

#[test]
fn sampling_overhead_is_small_at_scale() {
    let ctx = ctx();
    let graph = matcopy::matcopy(4096, 4, Scale::Divided(20));
    let mut joss = ModelSched::joss(ctx.models.clone());
    let report = SimEngine::run(&ctx.machine, &graph, &mut joss, EngineConfig::default());
    // Paper §5.1: ~0.8% of execution time on average; allow slack at our
    // reduced task counts.
    assert!(
        report.sampling_fraction() < 0.05,
        "sampling fraction {}",
        report.sampling_fraction()
    );
}

#[test]
fn fixed_sched_sweep_brackets_scheduler_energies() {
    // Any scheduler's energy must lie between the best and worst fixed
    // configuration (it cannot beat the best static oracle on a single-kernel
    // bag-of-tasks except via moldable width mixing, and never beat physics).
    let ctx = ctx();
    let graph = matmul::matmul(256, 16, Scale::Divided(400));
    let mut best = f64::INFINITY;
    let mut worst: f64 = 0.0;
    for cfg in ctx.space.iter_all() {
        let mut sched = FixedSched::new(cfg);
        let r = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
        best = best.min(r.total_j());
        worst = worst.max(r.total_j());
    }
    let mut joss = ModelSched::joss(ctx.models.clone());
    let r = SimEngine::run(&ctx.machine, &graph, &mut joss, EngineConfig::default());
    assert!(
        r.total_j() < worst,
        "JOSS {} must beat the worst static config {}",
        r.total_j(),
        worst
    );
    assert!(
        r.total_j() > 0.8 * best,
        "JOSS {} suspiciously below the static oracle {}",
        r.total_j(),
        best
    );
}

#[test]
fn pinned_configs_execute_on_requested_cluster() {
    let ctx = ctx();
    let graph = matmul::matmul(256, 4, Scale::Divided(400));
    let cfg = KnobConfig::new(CoreType::Little, NcIndex(0), FreqIndex(1), FreqIndex(0));
    let mut sched = FixedSched::new(cfg);
    let report = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
    assert_eq!(report.tasks_per_type[CoreType::Big.index()], 0);
    assert_eq!(
        report.tasks_per_type[CoreType::Little.index()],
        graph.n_tasks()
    );
}

#[test]
fn sensor_energy_tracks_exact_integration() {
    let ctx = ctx();
    let graph = matcopy::matcopy(4096, 4, Scale::Divided(100));
    let mut sched = GrwsSched::new();
    let report = SimEngine::run(&ctx.machine, &graph, &mut sched, EngineConfig::default());
    assert!(
        report.energy.sampling_rel_error() < 0.02,
        "5 ms sampling should track exact energy within 2%, got {}",
        report.energy.sampling_rel_error()
    );
}
