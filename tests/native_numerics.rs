//! The native (real-thread) executor running *real* numerical kernels:
//! a blocked LU factorization DAG whose result is verified against a
//! sequential reference, and a heat-diffusion sweep with checksum parity
//! across worker counts.

use joss_core::native::NativeExecutor;
use joss_dag::{KernelSpec, TaskGraphBuilder, TaskId};
use joss_platform::TaskShape;
use joss_workloads::native_kernels::{bmod, dot_block, jacobi_sweep, mm_tile};
use parking_lot::Mutex;
use std::collections::HashMap;

#[test]
fn parallel_blocked_matmul_matches_sequential() {
    // C = A * B over a 4x4 grid of 16x16 tiles; each tile-product is a task.
    let nb = 4;
    let ts = 16;
    let n = nb * ts;
    let a: Vec<f64> = (0..n * n).map(|i| ((i * 7) % 13) as f64 * 0.25).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i * 5) % 11) as f64 * 0.5).collect();

    let tile = |m: &[f64], bi: usize, bj: usize| -> Vec<f64> {
        let mut t = vec![0.0; ts * ts];
        for r in 0..ts {
            for c in 0..ts {
                t[r * ts + c] = m[(bi * ts + r) * n + (bj * ts + c)];
            }
        }
        t
    };

    // Build the DAG: one task per (i, j, k); chain over k per output tile.
    let mut builder = TaskGraphBuilder::new();
    let kernel = builder.add_kernel(KernelSpec::new("mm", TaskShape::new(0.001, 0.0)));
    let mut task_of = HashMap::new();
    for i in 0..nb {
        for j in 0..nb {
            let mut prev: Option<TaskId> = None;
            for k in 0..nb {
                let deps: Vec<TaskId> = prev.into_iter().collect();
                let t = builder.add_task(kernel, &deps).unwrap();
                task_of.insert(t, (i, j, k));
                prev = Some(t);
            }
        }
    }
    let graph = builder.build("blocked_mm").unwrap();

    let c_tiles: Vec<Mutex<Vec<f64>>> = (0..nb * nb)
        .map(|_| Mutex::new(vec![0.0; ts * ts]))
        .collect();
    NativeExecutor::new(4).execute(&graph, |t| {
        let (i, j, k) = task_of[&t];
        let at = tile(&a, i, k);
        let bt = tile(&b, k, j);
        let mut ct = c_tiles[i * nb + j].lock();
        mm_tile(&at, &bt, &mut ct, ts);
    });

    // Sequential reference, spot-checked across the matrix.
    for (bi, bj) in [(0, 0), (1, 3), (3, 1), (2, 2)] {
        let ct = c_tiles[bi * nb + bj].lock();
        for (r, c) in [(0, 0), (7, 9), (15, 15)] {
            let gi = bi * ts + r;
            let gj = bj * ts + c;
            let expect: f64 = (0..n).map(|k| a[gi * n + k] * b[k * n + gj]).sum();
            assert!(
                (ct[r * ts + c] - expect).abs() < 1e-6,
                "C[{gi}][{gj}] = {} vs {}",
                ct[r * ts + c],
                expect
            );
        }
    }
}

#[test]
fn jacobi_dag_is_worker_count_invariant() {
    // Two fork-join Jacobi sweeps over row blocks; the final checksum must
    // not depend on how many workers executed the DAG.
    let (rows, cols, blocks) = (64, 64, 4);
    let block_rows = rows / blocks;

    let run = |workers: usize| -> f64 {
        let mut builder = TaskGraphBuilder::new();
        let k = builder.add_kernel(KernelSpec::new("jacobi", TaskShape::new(0.001, 0.0)));
        let mut task_block = HashMap::new();
        let mut barrier: Vec<TaskId> = Vec::new();
        for sweep in 0..2 {
            let deps = barrier.clone();
            barrier = (0..blocks)
                .map(|bi| {
                    let t = builder.add_task(k, &deps).unwrap();
                    task_block.insert(t, (sweep, bi));
                    t
                })
                .collect();
        }
        let graph = builder.build("jacobi2").unwrap();

        let grid = Mutex::new(
            (0..rows * cols)
                .map(|i| ((i * 31) % 17) as f64)
                .collect::<Vec<f64>>(),
        );
        let scratch = Mutex::new(vec![0.0; rows * cols]);
        NativeExecutor::new(workers).execute(&graph, |t| {
            let (sweep, bi) = task_block[&t];
            // Alternate direction per sweep; operate on a padded row block.
            let lo = bi * block_rows;
            let hi = (lo + block_rows + 2).min(rows);
            let lo_pad = lo.saturating_sub(1);
            let (src, mut dst) = if sweep == 0 {
                (grid.lock().clone(), scratch.lock())
            } else {
                (scratch.lock().clone(), grid.lock())
            };
            let slice = &src[lo_pad * cols..hi * cols];
            let mut out = slice.to_vec();
            jacobi_sweep(slice, &mut out, hi - lo_pad, cols);
            dst[lo_pad * cols..hi * cols].copy_from_slice(&out);
        });
        let g = grid.lock();
        dot_block(&g, &g)
    };

    let s1 = run(1);
    let s4 = run(4);
    assert!(
        (s1 - s4).abs() < 1e-6 * s1.abs().max(1.0),
        "checksum must be worker-count invariant: {s1} vs {s4}"
    );
}

#[test]
fn bmod_chain_accumulates_updates_in_order() {
    // c -= a*b applied twice along a dependency chain must equal the
    // sequential double update.
    let n = 8;
    let a: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64).collect();
    let b: Vec<f64> = (0..n * n).map(|i| ((i + 2) % 7) as f64).collect();

    let mut builder = TaskGraphBuilder::new();
    let k = builder.add_kernel(KernelSpec::new("bmod", TaskShape::new(0.001, 0.0)));
    let t0 = builder.add_task(k, &[]).unwrap();
    let _t1 = builder.add_task(k, &[t0]).unwrap();
    let graph = builder.build("bmod_chain").unwrap();

    let c = Mutex::new(vec![1000.0; n * n]);
    NativeExecutor::new(2).execute(&graph, |_| {
        let mut cm = c.lock();
        bmod(&a, &b, &mut cm, n);
    });

    let mut expect = vec![1000.0; n * n];
    bmod(&a, &b, &mut expect, n);
    bmod(&a, &b, &mut expect, n);
    assert_eq!(*c.lock(), expect);
}
