//! Workspace-wiring smoke tests: the `joss` facade re-exports resolve and
//! every binary/example target in the workspace compiles.

use std::path::Path;
use std::process::Command;

/// Every facade module (`runtime`, `dag`, `models`, `platform`, `workloads`,
/// `experiments`) resolves and the layers interoperate end to end.
#[test]
fn facade_reexports_resolve() {
    use joss::{dag, models, platform, runtime, workloads};

    // platform → dag → runtime: run a tiny DAG through the engine.
    let machine = platform::MachineModel::tx2(7);
    let kernel = dag::KernelSpec::new("smoke", platform::TaskShape::new(0.001, 0.0001));
    let graph = dag::generators::independent("smoke_bag", kernel, 8);
    let mut sched = runtime::sched::GrwsSched::new();
    let report = runtime::engine::SimEngine::run(
        &machine,
        &graph,
        &mut sched,
        runtime::engine::EngineConfig::default(),
    );
    assert_eq!(report.tasks, 8);
    assert!(report.total_j() > 0.0);

    // models: Eq. 3 MB estimation is reachable through the facade.
    let mb = models::estimate_mb(1.0, 2.035, 1.2, 1.113);
    assert!((0.0..=1.0).contains(&mb));

    // workloads: the Table-1 scale type is reachable through the facade.
    assert_eq!(workloads::Scale::Divided(100).apply(1000, 10), 10);

    // experiments: the scheduler inventory is reachable through the facade.
    let _kind = joss::experiments::SchedulerKind::Joss;

    // sweep: grid building and the parse syntax are reachable through the
    // facade, and the scheduler inventory is the same type as experiments'.
    let parsed: joss::experiments::SchedulerKind = "joss+1.2x".parse().unwrap();
    assert_eq!(parsed, joss::sweep::SchedulerKind::JossSpeedup(1.2));
    let grid = joss::sweep::SpecGrid::new()
        .workload(joss::sweep::Workload::new(graph))
        .scheduler(joss::sweep::SchedulerKind::Grws)
        .seeds([1, 2]);
    assert_eq!(grid.len(), 2);

    // serve: the wire description and the daemon types are reachable
    // through the facade, and the description round-trips.
    let desc = joss::sweep::GridDesc {
        workloads: vec!["DP".into()],
        schedulers: vec![joss::sweep::SchedulerKind::Joss],
        seeds: vec![42],
        scale: workloads::Scale::Divided(400),
        record_trace: false,
        shard: None,
    };
    let round = joss::sweep::GridDesc::from_json(&desc.to_canonical_json()).unwrap();
    assert_eq!(round, desc);
    assert_eq!(round.spec_hash(), desc.spec_hash());
    let _cfg = joss::serve::ServeConfig::default();

    // fleet: shard planning and the coordinator types are reachable
    // through the facade.
    let plan = joss::sweep::ShardPlan::uniform(4, 2);
    assert_eq!(plan.len(), 2);
    let fleet_cfg = joss::fleet::FleetConfig::new(vec!["127.0.0.1:1".into()]);
    assert_eq!(fleet_cfg.backends.len(), 1);
}

/// The nine experiment binaries and eight examples are all present and
/// `cargo build --bins --examples` compiles them. The build is incremental
/// on top of the test build, so this mostly validates target wiring.
#[test]
fn all_bins_and_examples_compile() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));

    let count = |dir: &str| {
        std::fs::read_dir(root.join(dir))
            .unwrap_or_else(|e| panic!("missing {dir}: {e}"))
            .filter(|e| {
                e.as_ref()
                    .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "rs"))
            })
            .count()
    };
    assert_eq!(
        count("crates/experiments/src/bin"),
        9,
        "expected the nine experiment binaries"
    );
    assert_eq!(count("examples"), 8, "expected the eight examples");

    let status = Command::new(env!("CARGO"))
        .args(["build", "--workspace", "--bins", "--examples", "--offline"])
        .current_dir(root)
        .status()
        .expect("failed to invoke cargo");
    assert!(status.success(), "cargo build --bins --examples failed");
}
