//! Property-based tests (proptest) on the core invariants of the stack.

use joss_core::engine::{EngineConfig, SimEngine};
use joss_core::sched::{GrwsSched, ModelSched};
use joss_dag::{generators, KernelSpec};
use joss_experiments::ExperimentContext;
use joss_models::{
    estimate_mb, exhaustive_search, steepest_descent_search, EnergyEstimator, IdleTables,
    KernelTables, Objective,
};
use joss_platform::{
    ConfigSpace, CoreType, Duration, DvfsController, DvfsDomain, ExecContext, FreqIndex,
    MachineModel, SimTime, TaskShape,
};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_ctx() -> &'static ExperimentContext {
    static CTX: OnceLock<ExperimentContext> = OnceLock::new();
    CTX.get_or_init(|| ExperimentContext::with_reps(42, 2))
}

fn arb_shape() -> impl Strategy<Value = TaskShape> {
    (1e-6f64..0.5, 1e-6f64..0.5, 0.0f64..=1.0).prop_map(|(w, b, a)| TaskShape {
        work_gops: w,
        bytes_gb: b,
        scal_alpha: a,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The machine oracle produces physical measurements for any shape and
    /// configuration: positive time, non-negative powers, MB in [0, 1].
    #[test]
    fn machine_outputs_are_physical(
        shape in arb_shape(),
        tc_big in any::<bool>(),
        nc in 1usize..=4,
        fc in 0usize..5,
        fm in 0usize..3,
        seed in 0u64..1000,
    ) {
        let m = MachineModel::tx2(seed);
        let tc = if tc_big { CoreType::Big } else { CoreType::Little };
        let nc = nc.min(m.spec.cluster(tc).n_cores);
        let s = m.execute(
            &shape,
            tc,
            nc,
            m.spec.cpu_freqs_ghz[fc],
            m.spec.mem_freqs_ghz[fm],
            &ExecContext::alone(),
            &[seed, fc as u64, fm as u64],
        );
        prop_assert!(s.duration.as_secs_f64() > 0.0);
        prop_assert!(s.cpu_dyn_w >= 0.0 && s.cpu_dyn_w.is_finite());
        prop_assert!(s.mem_dyn_w >= 0.0 && s.mem_dyn_w.is_finite());
        prop_assert!((0.0..=1.0).contains(&s.true_mb));
    }

    /// More work never runs faster; higher memory frequency never runs
    /// slower (noise-free monotonicity).
    #[test]
    fn time_is_monotone(shape in arb_shape(), extra in 1e-6f64..0.5) {
        let m = MachineModel::tx2_noiseless();
        let ectx = ExecContext::alone();
        let (fc, fm_hi, fm_lo) = (2.035, 1.866, 0.800);
        let t = m.clean_time_s(&shape, CoreType::Big, 1, fc, fm_hi, &ectx);
        let mut bigger = shape;
        bigger.work_gops += extra;
        let t_big = m.clean_time_s(&bigger, CoreType::Big, 1, fc, fm_hi, &ectx);
        prop_assert!(t_big >= t);
        let t_slow_mem = m.clean_time_s(&shape, CoreType::Big, 1, fc, fm_lo, &ectx);
        prop_assert!(t_slow_mem >= t);
    }

    /// Eq. 3's MB estimate is always in [0, 1] for positive sample times.
    #[test]
    fn mb_estimate_is_clamped(t_ref in 1e-9f64..10.0, t_alt in 1e-9f64..10.0) {
        let mb = estimate_mb(t_ref, 2.035, t_alt, 1.113);
        prop_assert!((0.0..=1.0).contains(&mb));
    }

    /// DVFS controller timeline is consistent: after the last request's
    /// effective time, the frequency equals the last requested target.
    #[test]
    fn dvfs_controller_settles(targets in proptest::collection::vec(0usize..5, 1..10)) {
        let mut c = DvfsController::new(
            DvfsDomain::ClusterBig,
            FreqIndex(4),
            Duration::from_micros(100),
        );
        let mut t = SimTime::ZERO;
        let mut last_effective = SimTime::ZERO;
        for &target in &targets {
            t += Duration::from_micros(37);
            let r = c.request(FreqIndex(target), t);
            last_effective = last_effective.max(r.effective_at);
        }
        let settle = last_effective + Duration::from_micros(1);
        prop_assert_eq!(c.freq_at(settle), c.settled_freq());
        prop_assert_eq!(c.settled_freq(), FreqIndex(*targets.last().unwrap()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random layered DAG drains completely under both a model-free and
    /// a model-based scheduler, with positive energy and monotone virtual
    /// time.
    #[test]
    fn random_dags_always_drain(
        layers in 2usize..10,
        width in 1usize..8,
        dag_seed in 0u64..500,
        engine_seed in 0u64..500,
        w in 1e-5f64..0.05,
        b in 1e-5f64..0.05,
    ) {
        let ctx = shared_ctx();
        let kernel = KernelSpec::new("k", TaskShape::new(w, b));
        let graph = generators::random_layered("prop", kernel, layers, width, dag_seed);
        let n = graph.n_tasks();
        let cfg = EngineConfig { seed: engine_seed, ..EngineConfig::default() };

        let mut grws = GrwsSched::new();
        let r1 = SimEngine::run(&ctx.machine, &graph, &mut grws, cfg.clone());
        prop_assert_eq!(r1.tasks, n);
        prop_assert!(r1.total_j() > 0.0);

        let mut joss = ModelSched::joss(ctx.models.clone());
        let r2 = SimEngine::run(&ctx.machine, &graph, &mut joss, cfg);
        prop_assert_eq!(r2.tasks, n);
        prop_assert!(r2.total_j() > 0.0);
        // The sampled sensor must roughly agree with exact integration —
        // meaningful only once the makespan spans many 5 ms sensor periods.
        if r2.energy.makespan_s > 0.5 {
            prop_assert!(r2.energy.sampling_rel_error() < 0.25);
        }
    }

    /// Steepest descent never needs more evaluations than exhaustive search
    /// and never returns a config outside the admissible width.
    #[test]
    fn steepest_descent_is_cheaper_and_admissible(
        w in 1e-4f64..0.2,
        b in 1e-4f64..0.2,
        max_width in 1usize..=4,
        conc in 1.0f64..6.0,
    ) {
        let ctx = shared_ctx();
        let shape = TaskShape::new(w, b);
        let ectx = ExecContext::alone();
        let samples: Vec<Option<(f64, f64)>> = ctx
            .models
            .indexer()
            .iter()
            .map(|(tc, nc)| {
                let width = ctx.space.nc_count(tc, nc);
                if width > max_width {
                    return None;
                }
                Some((
                    ctx.machine.clean_time_s(
                        &shape, tc, width,
                        ctx.models.fc_ref_ghz(), ctx.models.fm_ref_ghz(), &ectx),
                    ctx.machine.clean_time_s(
                        &shape, tc, width,
                        ctx.models.fc_alt_ghz(), ctx.models.fm_ref_ghz(), &ectx),
                ))
            })
            .collect();
        let tables = ctx.models.build_kernel_tables(&samples);
        let est = EnergyEstimator {
            space: &ctx.space,
            tables: &tables,
            idle: &ctx.models.idle,
            objective: Objective::TotalEnergy,
            concurrency: conc,
            max_width,
        };
        let ex = exhaustive_search(&est, true);
        let sd = steepest_descent_search(&est, true);
        prop_assert!(sd.stats.evaluations <= ex.stats.evaluations);
        prop_assert!(ctx.space.nc_count(sd.config.tc, sd.config.nc) <= max_width);
        prop_assert!(ctx.space.nc_count(ex.config.tc, ex.config.nc) <= max_width);
        // Local search can miss the global optimum but not by much on these
        // landscapes.
        prop_assert!(sd.energy_j <= ex.energy_j * 1.5);
    }

    /// Lookup tables built from valid samples contain positive, finite times
    /// at every admissible cell.
    #[test]
    fn kernel_tables_are_finite(w in 1e-4f64..0.2, b in 1e-4f64..0.2) {
        let ctx = shared_ctx();
        let shape = TaskShape::new(w, b);
        let ectx = ExecContext::alone();
        let samples: Vec<Option<(f64, f64)>> = ctx
            .models
            .indexer()
            .iter()
            .map(|(tc, nc)| {
                let width = ctx.space.nc_count(tc, nc);
                Some((
                    ctx.machine.clean_time_s(
                        &shape, tc, width,
                        ctx.models.fc_ref_ghz(), ctx.models.fm_ref_ghz(), &ectx),
                    ctx.machine.clean_time_s(
                        &shape, tc, width,
                        ctx.models.fc_alt_ghz(), ctx.models.fm_ref_ghz(), &ectx),
                ))
            })
            .collect();
        let tables: KernelTables = ctx.models.build_kernel_tables(&samples);
        for cfg in ctx.space.iter_all() {
            prop_assert!(tables.time_s(cfg) > 0.0 && tables.time_s(cfg).is_finite());
            prop_assert!(tables.cpu_w(cfg) >= 0.0);
            prop_assert!(tables.mem_w(cfg) >= 0.0);
        }
        let _ = IdleTables::measure(&ctx.machine, &ctx.space);
        let _: &ConfigSpace = &ctx.space;
    }
}
