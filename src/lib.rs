//! # joss — facade crate
//!
//! Re-exports the whole JOSS reproduction workspace behind one dependency:
//!
//! * [`platform`] — simulated asymmetric multicore (SimTX2) substrate;
//! * [`dag`] — task-DAG representation and builders;
//! * [`models`] — MPR performance/power models, MB estimation, search;
//! * [`runtime`] — the JOSS runtime and comparator schedulers;
//! * [`workloads`] — the ten Table-1 benchmark generators;
//! * [`sweep`] — declarative campaign sweeps: spec grids, the parallel
//!   executor, uniform run records;
//! * [`serve`] — the simulation-as-a-service daemon: campaigns over
//!   HTTP/1.1 with streamed JSONL, a shared model cache, and admission
//!   control;
//! * [`fleet`] — the distribution layer: shard one grid across many
//!   serve backends and merge the streams byte-identically, with
//!   health-checked failover;
//! * [`telemetry`] — zero-dependency metrics, tracing, and profiling
//!   shared by every layer: striped counters/gauges/histograms, a
//!   trace-event ring, Prometheus-text and JSONL rendering (see
//!   `docs/OBSERVABILITY.md`);
//! * [`experiments`] — harnesses regenerating every paper figure/table.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use joss_core as runtime;
pub use joss_dag as dag;
pub use joss_experiments as experiments;
pub use joss_fleet as fleet;
pub use joss_models as models;
pub use joss_platform as platform;
pub use joss_serve as serve;
pub use joss_sweep as sweep;
pub use joss_telemetry as telemetry;
pub use joss_workloads as workloads;
